// Package value implements the weakly-typed dynamic value system underlying
// MROM. The paper requires "weak typing": method parameters and data items
// are untyped at the model level, and the model "should support generic
// coercion to facilitate the high level of abstraction (e.g., to transform a
// value that is represented as HTML text into an integer, when arithmetic
// operation should be performed on that value)".
//
// A Value is an immutable-by-convention tagged union over the kinds listed
// in Kind. Composite kinds (List, Map) share underlying storage on copy;
// use Clone for a deep copy at trust boundaries.
//
// Representation: a Value is a 24-byte tagged word — an 8-byte scalar
// (bool/int/float bits, or the payload length), an 8-byte pointer (payload
// data for string/bytes/list/map/time), and the kind tag. Scalars live
// entirely inline; strings, bytes and lists point straight at their
// backing arrays (length in num, so no header allocation); maps and times
// box their header. Reconstructed byte/list slices have cap == len, so
// appending to a retrieved payload always copies instead of scribbling on
// shared storage. The zero Value is Null.
package value

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
	"unsafe"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The dynamic kinds supported by the model.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindBytes
	KindList
	KindMap
	KindRef // reference to an object, held as its decentralized name
	KindTime
	kindCount // sentinel; keep last
)

// String returns the lower-case kind name used in diagnostics and on the wire.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBytes:
		return "bytes"
	case KindList:
		return "list"
	case KindMap:
		return "map"
	case KindRef:
		return "ref"
	case KindTime:
		return "time"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// KindFromString parses a kind name produced by Kind.String.
func KindFromString(s string) (Kind, bool) {
	for k := KindNull; k < kindCount; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return KindNull, false
}

// Value is a dynamically-typed datum. The zero Value is Null.
//
// The leading zero-size func field makes Value non-comparable: the pointer
// word identifies backing storage, not content, so == would be wrong —
// use Equal (or LooseEqual).
type Value struct {
	_    [0]func()
	num  uint64         // scalar bits, or payload length
	ptr  unsafe.Pointer // payload data / boxed header
	kind Kind
}

// emptyPayload anchors the non-nil empty Bytes payload, distinguishing
// NewBytes([]byte{}) from NewBytes(nil) without depending on what
// unsafe.SliceData returns for zero-capacity slices.
var emptyPayload byte

// emptyList is the shared read-only payload of every empty List (cap 0,
// so growing it always reallocates).
var emptyList = []Value{}

// Raw payload readers. Callers must have checked the kind; they exist so
// the package's own arithmetic and coercion code reads payloads without
// re-branching on kind.

func (v Value) boolRaw() bool     { return v.num != 0 }
func (v Value) intRaw() int64     { return int64(v.num) }
func (v Value) floatRaw() float64 { return math.Float64frombits(v.num) }

func (v Value) strRaw() string {
	if v.num == 0 {
		return ""
	}
	return unsafe.String((*byte)(v.ptr), int(v.num))
}

func (v Value) bytesRaw() []byte {
	if v.ptr == nil {
		return nil
	}
	return unsafe.Slice((*byte)(v.ptr), int(v.num))
}

func (v Value) listRaw() []Value {
	if v.ptr == nil {
		return emptyList
	}
	return unsafe.Slice((*Value)(v.ptr), int(v.num))
}

func (v Value) mapRaw() map[string]Value {
	if v.ptr == nil {
		return nil
	}
	return *(*map[string]Value)(v.ptr)
}

func (v Value) timeRaw() time.Time {
	if v.ptr == nil {
		return time.Time{}
	}
	return *(*time.Time)(v.ptr)
}

// Null is the null value.
var Null = Value{kind: KindNull}

// True and False are the boolean values.
var (
	True  = Value{kind: KindBool, num: 1}
	False = Value{kind: KindBool, num: 0}
)

// NewBool returns a Bool value.
func NewBool(b bool) Value {
	if b {
		return True
	}
	return False
}

// NewInt returns an Int value.
func NewInt(i int64) Value { return Value{kind: KindInt, num: uint64(i)} }

// NewFloat returns a Float value.
func NewFloat(f float64) Value { return Value{kind: KindFloat, num: math.Float64bits(f)} }

// NewString returns a String value.
func NewString(s string) Value {
	return Value{kind: KindString, num: uint64(len(s)), ptr: unsafe.Pointer(unsafe.StringData(s))}
}

// NewBytes returns a Bytes value. The slice is not copied; nil stays
// distinguishable from empty.
func NewBytes(b []byte) Value {
	if b == nil {
		return Value{kind: KindBytes}
	}
	if len(b) == 0 {
		return Value{kind: KindBytes, ptr: unsafe.Pointer(&emptyPayload)}
	}
	return Value{kind: KindBytes, num: uint64(len(b)), ptr: unsafe.Pointer(unsafe.SliceData(b))}
}

// NewList returns a List value. The slice is not copied.
func NewList(vs []Value) Value {
	if len(vs) == 0 {
		return Value{kind: KindList}
	}
	return Value{kind: KindList, num: uint64(len(vs)), ptr: unsafe.Pointer(unsafe.SliceData(vs))}
}

// NewListOf builds a List from its arguments.
func NewListOf(vs ...Value) Value { return NewList(vs) }

// NewMap returns a Map value. The map is not copied.
func NewMap(m map[string]Value) Value {
	if m == nil {
		m = map[string]Value{}
	}
	return Value{kind: KindMap, ptr: unsafe.Pointer(&m)}
}

// NewRef returns a Ref value naming an object by its decentralized name.
func NewRef(name string) Value {
	return Value{kind: KindRef, num: uint64(len(name)), ptr: unsafe.Pointer(unsafe.StringData(name))}
}

// NewTime returns a Time value.
func NewTime(t time.Time) Value {
	return Value{kind: KindTime, ptr: unsafe.Pointer(&t)}
}

// Kind reports the dynamic kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Bool returns the boolean payload; ok is false if v is not a Bool.
func (v Value) Bool() (b, ok bool) { return v.boolRaw(), v.kind == KindBool }

// Int returns the integer payload; ok is false if v is not an Int.
func (v Value) Int() (int64, bool) { return v.intRaw(), v.kind == KindInt }

// Float returns the float payload; ok is false if v is not a Float.
func (v Value) Float() (float64, bool) { return v.floatRaw(), v.kind == KindFloat }

// Str returns the string payload; ok is false if v is not a String.
func (v Value) Str() (string, bool) {
	if v.kind != KindString {
		return "", false
	}
	return v.strRaw(), true
}

// Bytes returns the bytes payload; ok is false if v is not Bytes.
func (v Value) Bytes() ([]byte, bool) {
	if v.kind != KindBytes {
		return nil, false
	}
	return v.bytesRaw(), true
}

// List returns the list payload; ok is false if v is not a List.
func (v Value) List() ([]Value, bool) {
	if v.kind != KindList {
		return nil, false
	}
	return v.listRaw(), true
}

// Map returns the map payload; ok is false if v is not a Map.
func (v Value) Map() (map[string]Value, bool) {
	if v.kind != KindMap {
		return nil, false
	}
	return v.mapRaw(), true
}

// Ref returns the referenced object name; ok is false if v is not a Ref.
func (v Value) Ref() (string, bool) {
	if v.kind != KindRef {
		return "", false
	}
	return v.strRaw(), true
}

// Time returns the time payload; ok is false if v is not a Time.
func (v Value) Time() (time.Time, bool) {
	if v.kind != KindTime {
		return time.Time{}, false
	}
	return v.timeRaw(), true
}

// Truthy reports the boolean interpretation of v used by control flow:
// Null and zero/empty values are false, everything else is true.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindNull:
		return false
	case KindBool:
		return v.boolRaw()
	case KindInt:
		return v.num != 0
	case KindFloat:
		return v.floatRaw() != 0
	case KindString, KindRef, KindBytes, KindList:
		return v.num != 0
	case KindMap:
		return len(v.mapRaw()) != 0
	case KindTime:
		return !v.timeRaw().IsZero()
	default:
		return false
	}
}

// Len returns the length of a String, Bytes, List or Map, and -1 otherwise.
func (v Value) Len() int {
	switch v.kind {
	case KindString, KindBytes, KindList:
		return int(v.num)
	case KindMap:
		return len(v.mapRaw())
	default:
		return -1
	}
}

// Index returns element i of a List, or the i-th byte of Bytes as an Int.
func (v Value) Index(i int) (Value, error) {
	switch v.kind {
	case KindList:
		list := v.listRaw()
		if i < 0 || i >= len(list) {
			return Null, fmt.Errorf("%w: index %d out of range [0,%d)", ErrBadType, i, len(list))
		}
		return list[i], nil
	case KindBytes:
		bs := v.bytesRaw()
		if i < 0 || i >= len(bs) {
			return Null, fmt.Errorf("%w: index %d out of range [0,%d)", ErrBadType, i, len(bs))
		}
		return NewInt(int64(bs[i])), nil
	case KindString:
		s := v.strRaw()
		if i < 0 || i >= len(s) {
			return Null, fmt.Errorf("%w: index %d out of range [0,%d)", ErrBadType, i, len(s))
		}
		return NewString(string(s[i])), nil
	default:
		return Null, fmt.Errorf("%w: cannot index %s", ErrBadType, v.kind)
	}
}

// Get returns the entry for key in a Map; missing keys yield Null, false.
func (v Value) Get(key string) (Value, bool) {
	if v.kind != KindMap {
		return Null, false
	}
	e, ok := v.mapRaw()[key]
	return e, ok
}

// Clone returns a deep copy of v. Scalars are returned as-is; Lists, Maps
// and Bytes are copied recursively so the result shares no mutable storage
// with v. Use at trust and ownership boundaries (per the style guide's
// "copy slices and maps at boundaries").
func (v Value) Clone() Value {
	switch v.kind {
	case KindBytes:
		src := v.bytesRaw()
		if src == nil {
			return v
		}
		bs := make([]byte, len(src))
		copy(bs, src)
		return NewBytes(bs)
	case KindList:
		src := v.listRaw()
		list := make([]Value, len(src))
		for i, e := range src {
			list[i] = e.Clone()
		}
		return NewList(list)
	case KindMap:
		src := v.mapRaw()
		m := make(map[string]Value, len(src))
		for k, e := range src {
			m[k] = e.Clone()
		}
		return NewMap(m)
	default:
		return v
	}
}

// Equal reports deep structural equality of kind and payload.
// Int and Float compare as distinct kinds; use Compare for numeric ordering
// across kinds.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindBool, KindInt:
		return v.num == o.num
	case KindFloat:
		vf, of := v.floatRaw(), o.floatRaw()
		return vf == of || (math.IsNaN(vf) && math.IsNaN(of))
	case KindString, KindRef:
		return v.strRaw() == o.strRaw()
	case KindBytes:
		return string(v.bytesRaw()) == string(o.bytesRaw())
	case KindList:
		vl, ol := v.listRaw(), o.listRaw()
		if len(vl) != len(ol) {
			return false
		}
		for i := range vl {
			if !vl[i].Equal(ol[i]) {
				return false
			}
		}
		return true
	case KindMap:
		vm, om := v.mapRaw(), o.mapRaw()
		if len(vm) != len(om) {
			return false
		}
		for k, e := range vm {
			oe, ok := om[k]
			if !ok || !e.Equal(oe) {
				return false
			}
		}
		return true
	case KindTime:
		return v.timeRaw().Equal(o.timeRaw())
	default:
		return false
	}
}

// String renders v for diagnostics and for String coercion. Strings render
// without quotes; composite values render in a stable, Go-literal-like form
// with map keys sorted.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindBool:
		return strconv.FormatBool(v.boolRaw())
	case KindInt:
		return strconv.FormatInt(v.intRaw(), 10)
	case KindFloat:
		return strconv.FormatFloat(v.floatRaw(), 'g', -1, 64)
	case KindString:
		return v.strRaw()
	case KindBytes:
		return fmt.Sprintf("bytes(%d)", int(v.num))
	case KindList:
		var sb strings.Builder
		sb.WriteByte('[')
		for i, e := range v.listRaw() {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.quoted())
		}
		sb.WriteByte(']')
		return sb.String()
	case KindMap:
		m := v.mapRaw()
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var sb strings.Builder
		sb.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(k)
			sb.WriteString(": ")
			sb.WriteString(m[k].quoted())
		}
		sb.WriteByte('}')
		return sb.String()
	case KindRef:
		return "ref(" + v.strRaw() + ")"
	case KindTime:
		return v.timeRaw().UTC().Format(time.RFC3339Nano)
	default:
		return "?"
	}
}

// quoted renders v like String but quotes string payloads, for use inside
// composite renderings.
func (v Value) quoted() string {
	if v.kind == KindString {
		return strconv.Quote(v.strRaw())
	}
	return v.String()
}
