// Package value implements the weakly-typed dynamic value system underlying
// MROM. The paper requires "weak typing": method parameters and data items
// are untyped at the model level, and the model "should support generic
// coercion to facilitate the high level of abstraction (e.g., to transform a
// value that is represented as HTML text into an integer, when arithmetic
// operation should be performed on that value)".
//
// A Value is an immutable-by-convention tagged union over the kinds listed
// in Kind. Composite kinds (List, Map) share underlying storage on copy;
// use Clone for a deep copy at trust boundaries.
package value

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The dynamic kinds supported by the model.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindBytes
	KindList
	KindMap
	KindRef // reference to an object, held as its decentralized name
	KindTime
	kindCount // sentinel; keep last
)

// String returns the lower-case kind name used in diagnostics and on the wire.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBytes:
		return "bytes"
	case KindList:
		return "list"
	case KindMap:
		return "map"
	case KindRef:
		return "ref"
	case KindTime:
		return "time"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// KindFromString parses a kind name produced by Kind.String.
func KindFromString(s string) (Kind, bool) {
	for k := KindNull; k < kindCount; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return KindNull, false
}

// Value is a dynamically-typed datum. The zero Value is Null.
type Value struct {
	kind Kind
	b    bool
	i    int64
	f    float64
	s    string // String and Ref payloads
	bs   []byte
	list []Value
	m    map[string]Value
	t    time.Time
}

// Null is the null value.
var Null = Value{kind: KindNull}

// True and False are the boolean values.
var (
	True  = Value{kind: KindBool, b: true}
	False = Value{kind: KindBool, b: false}
)

// NewBool returns a Bool value.
func NewBool(b bool) Value {
	if b {
		return True
	}
	return False
}

// NewInt returns an Int value.
func NewInt(i int64) Value { return Value{kind: KindInt, i: i} }

// NewFloat returns a Float value.
func NewFloat(f float64) Value { return Value{kind: KindFloat, f: f} }

// NewString returns a String value.
func NewString(s string) Value { return Value{kind: KindString, s: s} }

// NewBytes returns a Bytes value. The slice is not copied.
func NewBytes(b []byte) Value { return Value{kind: KindBytes, bs: b} }

// NewList returns a List value. The slice is not copied.
func NewList(vs []Value) Value {
	if vs == nil {
		vs = []Value{}
	}
	return Value{kind: KindList, list: vs}
}

// NewListOf builds a List from its arguments.
func NewListOf(vs ...Value) Value { return NewList(vs) }

// NewMap returns a Map value. The map is not copied.
func NewMap(m map[string]Value) Value {
	if m == nil {
		m = map[string]Value{}
	}
	return Value{kind: KindMap, m: m}
}

// NewRef returns a Ref value naming an object by its decentralized name.
func NewRef(name string) Value { return Value{kind: KindRef, s: name} }

// NewTime returns a Time value.
func NewTime(t time.Time) Value { return Value{kind: KindTime, t: t} }

// Kind reports the dynamic kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Bool returns the boolean payload; ok is false if v is not a Bool.
func (v Value) Bool() (b, ok bool) { return v.b, v.kind == KindBool }

// Int returns the integer payload; ok is false if v is not an Int.
func (v Value) Int() (int64, bool) { return v.i, v.kind == KindInt }

// Float returns the float payload; ok is false if v is not a Float.
func (v Value) Float() (float64, bool) { return v.f, v.kind == KindFloat }

// Str returns the string payload; ok is false if v is not a String.
func (v Value) Str() (string, bool) { return v.s, v.kind == KindString }

// Bytes returns the bytes payload; ok is false if v is not Bytes.
func (v Value) Bytes() ([]byte, bool) { return v.bs, v.kind == KindBytes }

// List returns the list payload; ok is false if v is not a List.
func (v Value) List() ([]Value, bool) { return v.list, v.kind == KindList }

// Map returns the map payload; ok is false if v is not a Map.
func (v Value) Map() (map[string]Value, bool) { return v.m, v.kind == KindMap }

// Ref returns the referenced object name; ok is false if v is not a Ref.
func (v Value) Ref() (string, bool) { return v.s, v.kind == KindRef }

// Time returns the time payload; ok is false if v is not a Time.
func (v Value) Time() (time.Time, bool) { return v.t, v.kind == KindTime }

// Truthy reports the boolean interpretation of v used by control flow:
// Null and zero/empty values are false, everything else is true.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindNull:
		return false
	case KindBool:
		return v.b
	case KindInt:
		return v.i != 0
	case KindFloat:
		return v.f != 0
	case KindString:
		return v.s != ""
	case KindBytes:
		return len(v.bs) != 0
	case KindList:
		return len(v.list) != 0
	case KindMap:
		return len(v.m) != 0
	case KindRef:
		return v.s != ""
	case KindTime:
		return !v.t.IsZero()
	default:
		return false
	}
}

// Len returns the length of a String, Bytes, List or Map, and -1 otherwise.
func (v Value) Len() int {
	switch v.kind {
	case KindString:
		return len(v.s)
	case KindBytes:
		return len(v.bs)
	case KindList:
		return len(v.list)
	case KindMap:
		return len(v.m)
	default:
		return -1
	}
}

// Index returns element i of a List, or the i-th byte of Bytes as an Int.
func (v Value) Index(i int) (Value, error) {
	switch v.kind {
	case KindList:
		if i < 0 || i >= len(v.list) {
			return Null, fmt.Errorf("%w: index %d out of range [0,%d)", ErrBadType, i, len(v.list))
		}
		return v.list[i], nil
	case KindBytes:
		if i < 0 || i >= len(v.bs) {
			return Null, fmt.Errorf("%w: index %d out of range [0,%d)", ErrBadType, i, len(v.bs))
		}
		return NewInt(int64(v.bs[i])), nil
	case KindString:
		if i < 0 || i >= len(v.s) {
			return Null, fmt.Errorf("%w: index %d out of range [0,%d)", ErrBadType, i, len(v.s))
		}
		return NewString(string(v.s[i])), nil
	default:
		return Null, fmt.Errorf("%w: cannot index %s", ErrBadType, v.kind)
	}
}

// Get returns the entry for key in a Map; missing keys yield Null, false.
func (v Value) Get(key string) (Value, bool) {
	if v.kind != KindMap {
		return Null, false
	}
	e, ok := v.m[key]
	return e, ok
}

// Clone returns a deep copy of v. Scalars are returned as-is; Lists, Maps
// and Bytes are copied recursively so the result shares no mutable storage
// with v. Use at trust and ownership boundaries (per the style guide's
// "copy slices and maps at boundaries").
func (v Value) Clone() Value {
	switch v.kind {
	case KindBytes:
		bs := make([]byte, len(v.bs))
		copy(bs, v.bs)
		return NewBytes(bs)
	case KindList:
		list := make([]Value, len(v.list))
		for i, e := range v.list {
			list[i] = e.Clone()
		}
		return NewList(list)
	case KindMap:
		m := make(map[string]Value, len(v.m))
		for k, e := range v.m {
			m[k] = e.Clone()
		}
		return NewMap(m)
	default:
		return v
	}
}

// Equal reports deep structural equality of kind and payload.
// Int and Float compare as distinct kinds; use Compare for numeric ordering
// across kinds.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindBool:
		return v.b == o.b
	case KindInt:
		return v.i == o.i
	case KindFloat:
		return v.f == o.f || (math.IsNaN(v.f) && math.IsNaN(o.f))
	case KindString, KindRef:
		return v.s == o.s
	case KindBytes:
		return string(v.bs) == string(o.bs)
	case KindList:
		if len(v.list) != len(o.list) {
			return false
		}
		for i := range v.list {
			if !v.list[i].Equal(o.list[i]) {
				return false
			}
		}
		return true
	case KindMap:
		if len(v.m) != len(o.m) {
			return false
		}
		for k, e := range v.m {
			oe, ok := o.m[k]
			if !ok || !e.Equal(oe) {
				return false
			}
		}
		return true
	case KindTime:
		return v.t.Equal(o.t)
	default:
		return false
	}
}

// String renders v for diagnostics and for String coercion. Strings render
// without quotes; composite values render in a stable, Go-literal-like form
// with map keys sorted.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBytes:
		return fmt.Sprintf("bytes(%d)", len(v.bs))
	case KindList:
		var sb strings.Builder
		sb.WriteByte('[')
		for i, e := range v.list {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.quoted())
		}
		sb.WriteByte(']')
		return sb.String()
	case KindMap:
		keys := make([]string, 0, len(v.m))
		for k := range v.m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var sb strings.Builder
		sb.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(k)
			sb.WriteString(": ")
			sb.WriteString(v.m[k].quoted())
		}
		sb.WriteByte('}')
		return sb.String()
	case KindRef:
		return "ref(" + v.s + ")"
	case KindTime:
		return v.t.UTC().Format(time.RFC3339Nano)
	default:
		return "?"
	}
}

// quoted renders v like String but quotes string payloads, for use inside
// composite renderings.
func (v Value) quoted() string {
	if v.kind == KindString {
		return strconv.Quote(v.s)
	}
	return v.String()
}
