package value

import (
	"testing"
	"unsafe"
)

func TestValueSize(t *testing.T) {
	if s := unsafe.Sizeof(Value{}); s > 24 {
		t.Fatalf("Value is %d bytes, want <= 24", s)
	}
}
