package value

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAdd(t *testing.T) {
	tests := []struct {
		name    string
		a, b    Value
		want    Value
		wantErr bool
	}{
		{"int+int", NewInt(2), NewInt(3), NewInt(5), false},
		{"int+float", NewInt(2), NewFloat(0.5), NewFloat(2.5), false},
		{"float+float", NewFloat(1.5), NewFloat(1.5), NewFloat(3), false},
		{"bool+int", True, NewInt(2), NewInt(3), false},
		{"string concat", NewString("a"), NewString("b"), NewString("ab"), false},
		{"string+int concat", NewString("n="), NewInt(4), NewString("n=4"), false},
		{"int+string concat", NewInt(4), NewString("!"), NewString("4!"), false},
		{"list concat", NewListOf(NewInt(1)), NewListOf(NewInt(2)), NewListOf(NewInt(1), NewInt(2)), false},
		// The paper's motivating coercion: HTML text in arithmetic.
		{"html+int", NewBytes([]byte("<td>10</td>")), NewInt(5), NewInt(15), false},
		{"numeric strings stay exact", NewBytes([]byte("10")), NewBytes([]byte("32")), NewInt(42), false},
		{"null+int fails", Null, NewInt(1), Null, true},
		{"map+int fails", NewMap(nil), NewInt(1), Null, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Add(tt.a, tt.b)
			if tt.wantErr != (err != nil) {
				t.Fatalf("Add err = %v, wantErr %v", err, tt.wantErr)
			}
			if err == nil && !got.Equal(tt.want) {
				t.Errorf("Add = %v (%s), want %v (%s)", got, got.Kind(), tt.want, tt.want.Kind())
			}
		})
	}
}

func TestSubMulDivModNeg(t *testing.T) {
	if v, err := Sub(NewInt(5), NewInt(2)); err != nil || !v.Equal(NewInt(3)) {
		t.Errorf("Sub: %v, %v", v, err)
	}
	if v, err := Sub(NewFloat(5), NewInt(2)); err != nil || !v.Equal(NewFloat(3)) {
		t.Errorf("Sub float: %v, %v", v, err)
	}
	if v, err := Mul(NewInt(4), NewInt(3)); err != nil || !v.Equal(NewInt(12)) {
		t.Errorf("Mul: %v, %v", v, err)
	}
	if v, err := Mul(NewString("ab"), NewInt(3)); err != nil || !v.Equal(NewString("ababab")) {
		t.Errorf("Mul string: %v, %v", v, err)
	}
	if v, err := Mul(NewInt(2), NewString("x")); err != nil || !v.Equal(NewString("xx")) {
		t.Errorf("Mul int*string: %v, %v", v, err)
	}
	if _, err := Mul(NewString("x"), NewInt(-1)); err == nil {
		t.Error("negative string repeat succeeded")
	}
	if v, err := Div(NewInt(7), NewInt(2)); err != nil || !v.Equal(NewInt(3)) {
		t.Errorf("Div int: %v, %v", v, err)
	}
	if v, err := Div(NewFloat(7), NewInt(2)); err != nil || !v.Equal(NewFloat(3.5)) {
		t.Errorf("Div float: %v, %v", v, err)
	}
	if _, err := Div(NewInt(1), NewInt(0)); err == nil {
		t.Error("int division by zero succeeded")
	}
	if _, err := Div(NewFloat(1), NewFloat(0)); err == nil {
		t.Error("float division by zero succeeded")
	}
	if v, err := Mod(NewInt(7), NewInt(3)); err != nil || !v.Equal(NewInt(1)) {
		t.Errorf("Mod: %v, %v", v, err)
	}
	if _, err := Mod(NewInt(7), NewInt(0)); err == nil {
		t.Error("modulo by zero succeeded")
	}
	if _, err := Mod(Null, NewInt(3)); err == nil {
		t.Error("Mod null succeeded")
	}
	if v, err := Neg(NewInt(5)); err != nil || !v.Equal(NewInt(-5)) {
		t.Errorf("Neg int: %v, %v", v, err)
	}
	if v, err := Neg(NewFloat(2.5)); err != nil || !v.Equal(NewFloat(-2.5)) {
		t.Errorf("Neg float: %v, %v", v, err)
	}
	if v, err := Neg(NewString("4")); err != nil {
		t.Errorf("Neg string: %v", err)
	} else if f, _ := v.Float(); f != -4 {
		t.Errorf("Neg string = %v", v)
	}
	if _, err := Neg(NewMap(nil)); err == nil {
		t.Error("Neg map succeeded")
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		name    string
		a, b    Value
		want    int
		wantErr bool
	}{
		{"int<int", NewInt(1), NewInt(2), -1, false},
		{"int=float", NewInt(2), NewFloat(2), 0, false},
		{"float>int", NewFloat(2.5), NewInt(2), 1, false},
		{"bool<bool", False, True, -1, false},
		{"bool=int", True, NewInt(1), 0, false},
		{"str<str", NewString("a"), NewString("b"), -1, false},
		{"bytes=bytes", NewBytes([]byte("x")), NewBytes([]byte("x")), 0, false},
		{"ref order", NewRef("a"), NewRef("b"), -1, false},
		{"null=null", Null, Null, 0, false},
		{"list lexicographic", NewListOf(NewInt(1), NewInt(2)), NewListOf(NewInt(1), NewInt(3)), -1, false},
		{"list prefix shorter", NewListOf(NewInt(1)), NewListOf(NewInt(1), NewInt(0)), -1, false},
		{"list prefix longer", NewListOf(NewInt(1), NewInt(0)), NewListOf(NewInt(1)), 1, false},
		{"str vs int errors", NewString("a"), NewInt(1), 0, true},
		{"map unordered", NewMap(nil), NewMap(nil), 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Compare(tt.a, tt.b)
			if tt.wantErr != (err != nil) {
				t.Fatalf("Compare err = %v, wantErr %v", err, tt.wantErr)
			}
			if err == nil && got != tt.want {
				t.Errorf("Compare = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestLooseEqual(t *testing.T) {
	if !LooseEqual(NewInt(3), NewFloat(3)) {
		t.Error("int/float loose equality failed")
	}
	if LooseEqual(NewInt(3), NewFloat(3.5)) {
		t.Error("unequal numerics loosely equal")
	}
	if !LooseEqual(NewString("a"), NewString("a")) {
		t.Error("string loose equality failed")
	}
	if LooseEqual(NewString("1"), NewInt(1)) {
		t.Error("string/int loosely equal")
	}
}

// Property: Add on Ints agrees with int64 addition.
func TestPropAddInts(t *testing.T) {
	f := func(a, b int32) bool {
		v, err := Add(NewInt(int64(a)), NewInt(int64(b)))
		if err != nil {
			return false
		}
		i, ok := v.Int()
		return ok && i == int64(a)+int64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric on random numerics.
func TestPropCompareAntisymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := NewFloat(r.NormFloat64()), NewInt(r.Int63n(100)-50)
		c1, err1 := Compare(a, b)
		c2, err2 := Compare(b, a)
		return err1 == nil && err2 == nil && c1 == -c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Sub(Add(a,b),b) == a for small ints (no overflow in range).
func TestPropAddSubInverse(t *testing.T) {
	f := func(a, b int16) bool {
		s, err := Add(NewInt(int64(a)), NewInt(int64(b)))
		if err != nil {
			return false
		}
		d, err := Sub(s, NewInt(int64(b)))
		if err != nil {
			return false
		}
		return d.Equal(NewInt(int64(a)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
