package value

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// ErrBadType reports a value of an unusable dynamic kind, including failed
// coercions. Callers test for it with errors.Is.
var ErrBadType = errors.New("bad dynamic type")

// Coerce converts v to the requested kind using the model's generic coercion
// rules. Coercion is the paper's answer to heterogeneity: "the object model
// should support generic coercion … e.g., to transform a value that is
// represented as HTML text into an integer".
//
// The rules, per target kind:
//
//   - null:   anything coerces to Null.
//   - bool:   Truthy interpretation.
//   - int:    Int as-is; Float truncated toward zero (NaN/±Inf fail);
//     Bool 0/1; String/Bytes parsed, falling back to extracting the
//     first numeric literal from markup text (the HTML→int rule);
//     Time → Unix nanoseconds.
//   - float:  numeric widening of the above; String parsed likewise.
//   - string: Value.String rendering (strings unquoted, bytes UTF-8).
//   - bytes:  String's bytes; Bytes as-is.
//   - list:   List as-is; anything else becomes a one-element list.
//   - map:    Map as-is only.
//   - ref:    Ref as-is; String taken as an object name.
//   - time:   Time as-is; Int as Unix nanoseconds; String per RFC 3339.
func Coerce(v Value, k Kind) (Value, error) {
	if v.kind == k {
		return v, nil
	}
	switch k {
	case KindNull:
		return Null, nil
	case KindBool:
		return NewBool(v.Truthy()), nil
	case KindInt:
		return coerceInt(v)
	case KindFloat:
		return coerceFloat(v)
	case KindString:
		if v.kind == KindBytes {
			return NewString(string(v.bytesRaw())), nil
		}
		return NewString(v.String()), nil
	case KindBytes:
		if v.kind == KindString {
			return NewBytes([]byte(v.strRaw())), nil
		}
		return Null, coerceErr(v, k)
	case KindList:
		return NewListOf(v), nil
	case KindMap:
		return Null, coerceErr(v, k)
	case KindRef:
		if v.kind == KindString {
			return NewRef(v.strRaw()), nil
		}
		return Null, coerceErr(v, k)
	case KindTime:
		switch v.kind {
		case KindInt:
			return NewTime(time.Unix(0, v.intRaw()).UTC()), nil
		case KindString:
			t, err := time.Parse(time.RFC3339Nano, v.strRaw())
			if err != nil {
				return Null, fmt.Errorf("%w: %q is not an RFC 3339 time", ErrBadType, v.strRaw())
			}
			return NewTime(t), nil
		default:
			return Null, coerceErr(v, k)
		}
	default:
		return Null, coerceErr(v, k)
	}
}

func coerceErr(v Value, k Kind) error {
	return fmt.Errorf("%w: cannot coerce %s to %s", ErrBadType, v.kind, k)
}

func coerceInt(v Value) (Value, error) {
	switch v.kind {
	case KindBool:
		if v.boolRaw() {
			return NewInt(1), nil
		}
		return NewInt(0), nil
	case KindFloat:
		if math.IsNaN(v.floatRaw()) || math.IsInf(v.floatRaw(), 0) {
			return Null, fmt.Errorf("%w: cannot coerce %v to int", ErrBadType, v.floatRaw())
		}
		return NewInt(int64(v.floatRaw())), nil
	case KindString:
		return parseNumeric(v.strRaw(), KindInt)
	case KindBytes:
		return parseNumeric(string(v.bytesRaw()), KindInt)
	case KindTime:
		return NewInt(v.timeRaw().UnixNano()), nil
	default:
		return Null, coerceErr(v, KindInt)
	}
}

func coerceFloat(v Value) (Value, error) {
	switch v.kind {
	case KindBool:
		if v.boolRaw() {
			return NewFloat(1), nil
		}
		return NewFloat(0), nil
	case KindInt:
		return NewFloat(float64(v.intRaw())), nil
	case KindString:
		return parseNumeric(v.strRaw(), KindFloat)
	case KindBytes:
		return parseNumeric(string(v.bytesRaw()), KindFloat)
	default:
		return Null, coerceErr(v, KindFloat)
	}
}

// parseNumeric parses s as a number of the requested kind. It first tries a
// strict parse of the trimmed text; failing that it strips markup tags and
// extracts the first numeric literal — the paper's HTML-text-to-integer
// coercion. Thousands separators inside the literal are accepted.
func parseNumeric(s string, k Kind) (Value, error) {
	trimmed := strings.TrimSpace(s)
	if v, ok := parseStrict(trimmed, k); ok {
		return v, nil
	}
	stripped := StripMarkup(s)
	lit, ok := firstNumericLiteral(stripped)
	if !ok {
		return Null, fmt.Errorf("%w: no numeric content in %q", ErrBadType, s)
	}
	if v, ok := parseStrict(lit, k); ok {
		return v, nil
	}
	return Null, fmt.Errorf("%w: cannot parse %q as %s", ErrBadType, lit, k)
}

func parseStrict(s string, k Kind) (Value, bool) {
	if s == "" {
		return Null, false
	}
	clean := strings.ReplaceAll(s, ",", "")
	if k == KindInt {
		if i, err := strconv.ParseInt(clean, 10, 64); err == nil {
			return NewInt(i), true
		}
		// Accept float syntax truncated toward zero ("3.9" → 3).
		if f, err := strconv.ParseFloat(clean, 64); err == nil && !math.IsNaN(f) && !math.IsInf(f, 0) {
			return NewInt(int64(f)), true
		}
		return Null, false
	}
	if f, err := strconv.ParseFloat(clean, 64); err == nil {
		return NewFloat(f), true
	}
	return Null, false
}

// StripMarkup removes SGML/HTML tags and decodes the handful of character
// entities that matter for numeric extraction, returning the text content.
// It is deliberately small: mobile objects use it to lift values out of
// markup responses, not to parse documents.
func StripMarkup(s string) string {
	var sb strings.Builder
	sb.Grow(len(s))
	inTag := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '<':
			inTag = true
			sb.WriteByte(' ')
		case c == '>':
			inTag = false
		case inTag:
			// skip
		case c == '&':
			if rest, ent, ok := decodeEntity(s[i:]); ok {
				sb.WriteString(ent)
				i += rest - 1
			} else {
				sb.WriteByte(c)
			}
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

// decodeEntity decodes a leading character entity in s, returning the number
// of bytes consumed and its replacement text.
func decodeEntity(s string) (n int, text string, ok bool) {
	entities := map[string]string{
		"&amp;": "&", "&lt;": "<", "&gt;": ">", "&quot;": `"`,
		"&nbsp;": " ", "&#45;": "-", "&#43;": "+",
	}
	for ent, rep := range entities {
		if strings.HasPrefix(s, ent) {
			return len(ent), rep, true
		}
	}
	return 0, "", false
}

// firstNumericLiteral scans text for the first decimal literal, accepting an
// optional sign, thousands separators, and a fractional part.
func firstNumericLiteral(text string) (string, bool) {
	for i := 0; i < len(text); i++ {
		c := text[i]
		if c >= '0' && c <= '9' {
			start := i
			if start > 0 && (text[start-1] == '-' || text[start-1] == '+') {
				start--
			}
			end := i
			for end < len(text) {
				c := text[end]
				if (c >= '0' && c <= '9') || c == '.' || c == ',' {
					end++
					continue
				}
				break
			}
			// Trim trailing punctuation that is sentence structure, not digits.
			lit := strings.TrimRight(text[start:end], ".,")
			if lit == "" || lit == "-" || lit == "+" {
				continue
			}
			return lit, true
		}
	}
	return "", false
}
