package value

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// FromJSON converts a JSON document to a model value — the syntactic
// bridging HADAS's communication level calls "mediating syntactic
// mismatches in data formats". JSON numbers become Int when integral and
// representable, Float otherwise; objects become Maps, arrays Lists.
func FromJSON(data []byte) (Value, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var raw any
	if err := dec.Decode(&raw); err != nil {
		return Null, fmt.Errorf("%w: invalid JSON: %v", ErrBadType, err)
	}
	// Reject trailing content after the first document.
	if dec.More() {
		return Null, fmt.Errorf("%w: trailing JSON content", ErrBadType)
	}
	return fromJSONValue(raw)
}

func fromJSONValue(raw any) (Value, error) {
	switch v := raw.(type) {
	case nil:
		return Null, nil
	case bool:
		return NewBool(v), nil
	case string:
		return NewString(v), nil
	case json.Number:
		s := v.String()
		if !strings.ContainsAny(s, ".eE") {
			if i, err := strconv.ParseInt(s, 10, 64); err == nil {
				return NewInt(i), nil
			}
		}
		f, err := v.Float64()
		if err != nil {
			return Null, fmt.Errorf("%w: number %q: %v", ErrBadType, s, err)
		}
		return NewFloat(f), nil
	case []any:
		out := make([]Value, len(v))
		for i, e := range v {
			ev, err := fromJSONValue(e)
			if err != nil {
				return Null, err
			}
			out[i] = ev
		}
		return NewList(out), nil
	case map[string]any:
		out := make(map[string]Value, len(v))
		for k, e := range v {
			ev, err := fromJSONValue(e)
			if err != nil {
				return Null, err
			}
			out[k] = ev
		}
		return NewMap(out), nil
	default:
		return Null, fmt.Errorf("%w: unsupported JSON node %T", ErrBadType, raw)
	}
}

// ToJSON renders a model value as JSON. Bytes render as a base64-free hex
// string under {"$bytes": "…"}; Refs as {"$ref": "…"}; Times as RFC 3339
// strings. Map keys are emitted sorted for deterministic output.
func ToJSON(v Value) ([]byte, error) {
	var sb strings.Builder
	if err := writeJSON(&sb, v); err != nil {
		return nil, err
	}
	return []byte(sb.String()), nil
}

func writeJSON(sb *strings.Builder, v Value) error {
	switch v.Kind() {
	case KindNull:
		sb.WriteString("null")
	case KindBool:
		b, _ := v.Bool()
		sb.WriteString(strconv.FormatBool(b))
	case KindInt:
		i, _ := v.Int()
		sb.WriteString(strconv.FormatInt(i, 10))
	case KindFloat:
		f, _ := v.Float()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("%w: %v has no JSON representation", ErrBadType, f)
		}
		sb.WriteString(strconv.FormatFloat(f, 'g', -1, 64))
	case KindString:
		s, _ := v.Str()
		writeJSONString(sb, s)
	case KindBytes:
		b, _ := v.Bytes()
		sb.WriteString(`{"$bytes":`)
		writeJSONString(sb, hexEncode(b))
		sb.WriteByte('}')
	case KindRef:
		r, _ := v.Ref()
		sb.WriteString(`{"$ref":`)
		writeJSONString(sb, r)
		sb.WriteByte('}')
	case KindTime:
		sb.WriteString(strconv.Quote(v.String()))
	case KindList:
		l, _ := v.List()
		sb.WriteByte('[')
		for i, e := range l {
			if i > 0 {
				sb.WriteByte(',')
			}
			if err := writeJSON(sb, e); err != nil {
				return err
			}
		}
		sb.WriteByte(']')
	case KindMap:
		m, _ := v.Map()
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				sb.WriteByte(',')
			}
			writeJSONString(sb, k)
			sb.WriteByte(':')
			if err := writeJSON(sb, m[k]); err != nil {
				return err
			}
		}
		sb.WriteByte('}')
	default:
		return fmt.Errorf("%w: kind %s has no JSON representation", ErrBadType, v.Kind())
	}
	return nil
}

func writeJSONString(sb *strings.Builder, s string) {
	enc, _ := json.Marshal(s) // strings always marshal
	sb.Write(enc)
}

func hexEncode(b []byte) string {
	const hexDigits = "0123456789abcdef"
	out := make([]byte, 0, len(b)*2)
	for _, c := range b {
		out = append(out, hexDigits[c>>4], hexDigits[c&0xf])
	}
	return string(out)
}
