package value

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{KindNull, "null"},
		{KindBool, "bool"},
		{KindInt, "int"},
		{KindFloat, "float"},
		{KindString, "string"},
		{KindBytes, "bytes"},
		{KindList, "list"},
		{KindMap, "map"},
		{KindRef, "ref"},
		{KindTime, "time"},
		{Kind(200), "kind(200)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.kind, got, tt.want)
		}
	}
}

func TestKindFromStringRoundTrip(t *testing.T) {
	for k := KindNull; k < kindCount; k++ {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Errorf("KindFromString(%q) = %v, %v; want %v, true", k.String(), got, ok, k)
		}
	}
	if _, ok := KindFromString("nope"); ok {
		t.Error("KindFromString(nope) succeeded, want failure")
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	now := time.Now()
	tests := []struct {
		name string
		v    Value
		kind Kind
	}{
		{"null", Null, KindNull},
		{"bool", NewBool(true), KindBool},
		{"int", NewInt(42), KindInt},
		{"float", NewFloat(2.5), KindFloat},
		{"string", NewString("hi"), KindString},
		{"bytes", NewBytes([]byte{1, 2}), KindBytes},
		{"list", NewListOf(NewInt(1)), KindList},
		{"map", NewMap(map[string]Value{"a": NewInt(1)}), KindMap},
		{"ref", NewRef("obj-1"), KindRef},
		{"time", NewTime(now), KindTime},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.v.Kind() != tt.kind {
				t.Fatalf("Kind() = %v, want %v", tt.v.Kind(), tt.kind)
			}
		})
	}

	if b, ok := NewBool(true).Bool(); !ok || !b {
		t.Error("Bool accessor failed")
	}
	if i, ok := NewInt(7).Int(); !ok || i != 7 {
		t.Error("Int accessor failed")
	}
	if f, ok := NewFloat(1.5).Float(); !ok || f != 1.5 {
		t.Error("Float accessor failed")
	}
	if s, ok := NewString("x").Str(); !ok || s != "x" {
		t.Error("Str accessor failed")
	}
	if bs, ok := NewBytes([]byte("ab")).Bytes(); !ok || string(bs) != "ab" {
		t.Error("Bytes accessor failed")
	}
	if r, ok := NewRef("id").Ref(); !ok || r != "id" {
		t.Error("Ref accessor failed")
	}
	if tm, ok := NewTime(now).Time(); !ok || !tm.Equal(now) {
		t.Error("Time accessor failed")
	}
	// Wrong-kind accessors report !ok.
	if _, ok := NewInt(1).Str(); ok {
		t.Error("Str on Int reported ok")
	}
	if _, ok := NewString("s").Int(); ok {
		t.Error("Int on String reported ok")
	}
}

func TestTruthy(t *testing.T) {
	tests := []struct {
		v    Value
		want bool
	}{
		{Null, false},
		{True, true},
		{False, false},
		{NewInt(0), false},
		{NewInt(-1), true},
		{NewFloat(0), false},
		{NewFloat(0.1), true},
		{NewString(""), false},
		{NewString("a"), true},
		{NewBytes(nil), false},
		{NewBytes([]byte{0}), true},
		{NewList(nil), false},
		{NewListOf(Null), true},
		{NewMap(nil), false},
		{NewMap(map[string]Value{"k": Null}), true},
		{NewRef(""), false},
		{NewRef("x"), true},
		{NewTime(time.Time{}), false},
		{NewTime(time.Unix(1, 0)), true},
	}
	for _, tt := range tests {
		if got := tt.v.Truthy(); got != tt.want {
			t.Errorf("Truthy(%s %s) = %v, want %v", tt.v.Kind(), tt.v, got, tt.want)
		}
	}
}

func TestLen(t *testing.T) {
	tests := []struct {
		v    Value
		want int
	}{
		{NewString("abc"), 3},
		{NewBytes([]byte{1}), 1},
		{NewListOf(Null, Null), 2},
		{NewMap(map[string]Value{"a": Null}), 1},
		{NewInt(5), -1},
		{Null, -1},
	}
	for _, tt := range tests {
		if got := tt.v.Len(); got != tt.want {
			t.Errorf("Len(%s) = %d, want %d", tt.v.Kind(), got, tt.want)
		}
	}
}

func TestIndex(t *testing.T) {
	l := NewListOf(NewInt(10), NewInt(20))
	if e, err := l.Index(1); err != nil || !e.Equal(NewInt(20)) {
		t.Errorf("list index: got %v, %v", e, err)
	}
	if _, err := l.Index(2); err == nil {
		t.Error("out-of-range list index succeeded")
	}
	if _, err := l.Index(-1); err == nil {
		t.Error("negative list index succeeded")
	}
	b := NewBytes([]byte{7, 8})
	if e, err := b.Index(0); err != nil || !e.Equal(NewInt(7)) {
		t.Errorf("bytes index: got %v, %v", e, err)
	}
	s := NewString("xyz")
	if e, err := s.Index(2); err != nil || !e.Equal(NewString("z")) {
		t.Errorf("string index: got %v, %v", e, err)
	}
	if _, err := NewInt(3).Index(0); err == nil {
		t.Error("index on int succeeded")
	}
}

func TestMapGet(t *testing.T) {
	m := NewMap(map[string]Value{"a": NewInt(1)})
	if v, ok := m.Get("a"); !ok || !v.Equal(NewInt(1)) {
		t.Error("Get(a) failed")
	}
	if _, ok := m.Get("b"); ok {
		t.Error("Get(b) reported present")
	}
	if _, ok := NewInt(1).Get("a"); ok {
		t.Error("Get on non-map reported present")
	}
}

func TestCloneIsDeep(t *testing.T) {
	inner := []Value{NewInt(1)}
	m := map[string]Value{"l": NewList(inner)}
	orig := NewMap(m)
	cl := orig.Clone()

	// Mutate the original's nested storage; the clone must be unaffected.
	inner[0] = NewInt(99)
	m["extra"] = NewInt(5)

	clm, _ := cl.Map()
	if len(clm) != 1 {
		t.Fatalf("clone map grew: %v", cl)
	}
	l, _ := clm["l"].List()
	if !l[0].Equal(NewInt(1)) {
		t.Errorf("clone shares nested list storage: %v", l[0])
	}

	bs := []byte{1, 2}
	bv := NewBytes(bs)
	bc := bv.Clone()
	bs[0] = 9
	got, _ := bc.Bytes()
	if got[0] != 1 {
		t.Error("clone shares bytes storage")
	}
}

func TestEqual(t *testing.T) {
	now := time.Now()
	tests := []struct {
		name string
		a, b Value
		want bool
	}{
		{"null=null", Null, Null, true},
		{"int=int", NewInt(3), NewInt(3), true},
		{"int!=int", NewInt(3), NewInt(4), false},
		{"int!=float", NewInt(3), NewFloat(3), false},
		{"str=str", NewString("a"), NewString("a"), true},
		{"bytes=bytes", NewBytes([]byte("a")), NewBytes([]byte("a")), true},
		{"ref=ref", NewRef("x"), NewRef("x"), true},
		{"ref!=str", NewRef("x"), NewString("x"), false},
		{"time=time", NewTime(now), NewTime(now), true},
		{"list=list", NewListOf(NewInt(1), NewString("a")), NewListOf(NewInt(1), NewString("a")), true},
		{"list len mismatch", NewListOf(NewInt(1)), NewListOf(NewInt(1), NewInt(2)), false},
		{"list element mismatch", NewListOf(NewInt(1)), NewListOf(NewInt(2)), false},
		{"map=map", NewMap(map[string]Value{"k": Null}), NewMap(map[string]Value{"k": Null}), true},
		{"map key mismatch", NewMap(map[string]Value{"k": Null}), NewMap(map[string]Value{"j": Null}), false},
		{"map size mismatch", NewMap(map[string]Value{"k": Null}), NewMap(map[string]Value{}), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Equal(tt.b); got != tt.want {
				t.Errorf("Equal = %v, want %v", got, tt.want)
			}
			if got := tt.b.Equal(tt.a); got != tt.want {
				t.Errorf("Equal (sym) = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestStringRendering(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{Null, "null"},
		{True, "true"},
		{NewInt(-5), "-5"},
		{NewFloat(2.5), "2.5"},
		{NewString("plain"), "plain"},
		{NewListOf(NewInt(1), NewString("a")), `[1, "a"]`},
		{NewMap(map[string]Value{"b": NewInt(2), "a": NewInt(1)}), "{a: 1, b: 2}"},
		{NewRef("oid"), "ref(oid)"},
		{NewBytes(make([]byte, 3)), "bytes(3)"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String(%v kind) = %q, want %q", tt.v.Kind(), got, tt.want)
		}
	}
}

// randomValue builds an arbitrary Value of bounded depth for property tests.
func randomValue(r *rand.Rand, depth int) Value {
	k := r.Intn(9)
	if depth <= 0 && (k == 6 || k == 7) {
		k = r.Intn(6)
	}
	switch k {
	case 0:
		return Null
	case 1:
		return NewBool(r.Intn(2) == 0)
	case 2:
		return NewInt(r.Int63() - r.Int63())
	case 3:
		return NewFloat(r.NormFloat64() * 1e6)
	case 4:
		return NewString(randString(r))
	case 5:
		b := make([]byte, r.Intn(16))
		r.Read(b)
		return NewBytes(b)
	case 6:
		n := r.Intn(4)
		l := make([]Value, n)
		for i := range l {
			l[i] = randomValue(r, depth-1)
		}
		return NewList(l)
	case 7:
		n := r.Intn(4)
		m := make(map[string]Value, n)
		for i := 0; i < n; i++ {
			m[randString(r)] = randomValue(r, depth-1)
		}
		return NewMap(m)
	default:
		return NewRef(randString(r))
	}
}

func randString(r *rand.Rand) string {
	const chars = "abcdefghijklmnop <>&123"
	n := r.Intn(10)
	b := make([]byte, n)
	for i := range b {
		b[i] = chars[r.Intn(len(chars))]
	}
	return string(b)
}

// Property: Clone is structurally equal to its source.
func TestPropCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 3)
		return v.Clone().Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Equal is reflexive.
func TestPropEqualReflexive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 3)
		return v.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: coercion to a value's own kind is the identity.
func TestPropCoerceIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 3)
		got, err := Coerce(v, v.Kind())
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: every value coerces to bool, string and list without error.
func TestPropCoerceTotalKinds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 3)
		for _, k := range []Kind{KindBool, KindString, KindList, KindNull} {
			if _, err := Coerce(v, k); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestValueZeroIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() || v.Kind() != KindNull {
		t.Error("zero Value is not Null")
	}
	if !reflect.DeepEqual(v, Null) {
		t.Error("zero Value differs from Null")
	}
}
