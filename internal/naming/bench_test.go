package naming

import "testing"

func BenchmarkGeneratorNew(b *testing.B) {
	g := NewGenerator("bench")
	for i := 0; i < b.N; i++ {
		_ = g.New()
	}
}

func BenchmarkIDString(b *testing.B) {
	id := NewGenerator("bench").New()
	for i := 0; i < b.N; i++ {
		_ = id.String()
	}
}

func BenchmarkParseID(b *testing.B) {
	s := NewGenerator("bench").New().String()
	for i := 0; i < b.N; i++ {
		if _, err := ParseID(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRegistryLookup(b *testing.B) {
	r := NewRegistry()
	g := NewGenerator("bench")
	id := g.New()
	r.Register(id, 1)
	if err := r.Bind("name", id); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Lookup("name"); err != nil {
			b.Fatal(err)
		}
	}
}
