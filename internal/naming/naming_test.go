package naming

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestIDStringParseRoundTrip(t *testing.T) {
	g := NewGenerator("site-a")
	for i := 0; i < 100; i++ {
		id := g.New()
		parsed, err := ParseID(id.String())
		if err != nil {
			t.Fatalf("ParseID(%q): %v", id.String(), err)
		}
		if parsed != id {
			t.Fatalf("round trip mismatch: %s != %s", parsed, id)
		}
	}
}

func TestParseIDRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"short",
		"zzzzzzzz-zzzzzzzzzzzz-zzzz-zzzzzzzz",    // non-hex
		"00000000+000000000000-0000-00000000",    // wrong separator
		"00000000-000000000000-0000-0000000",     // short last group
		"00000000-000000000000-0000-00000000-ff", // too long
		"0000000-0000000000000-0000-00000000",    // group sizes off
		"00000000-000000000000_0000-00000000",    // wrong separator pos
		"g0000000-000000000000-0000-00000000",    // non-hex first group
		"00000000-g00000000000-0000-00000000",    // non-hex mid group
		"00000000-000000000000-g000-00000000",    // non-hex counter
	}
	for _, s := range bad {
		if _, err := ParseID(s); err == nil {
			t.Errorf("ParseID(%q) succeeded, want error", s)
		} else if !errors.Is(err, ErrBadID) {
			t.Errorf("ParseID(%q) error %v is not ErrBadID", s, err)
		}
	}
}

func TestIDEmbedsSiteAndTime(t *testing.T) {
	at := time.Date(2026, 7, 5, 10, 0, 0, 0, time.UTC)
	g := newGeneratorAt("tokyo", func() time.Time { return at })
	id := g.New()
	if id.Site() != g.Site() {
		t.Errorf("Site() = %d, want %d", id.Site(), g.Site())
	}
	if got := id.Minted(); !got.Equal(at) {
		t.Errorf("Minted() = %v, want %v", got, at)
	}
	if id.IsNil() {
		t.Error("fresh ID is nil")
	}
	if !Nil.IsNil() {
		t.Error("Nil.IsNil() = false")
	}
}

func TestGeneratorUniquenessSequential(t *testing.T) {
	g := NewGenerator("site")
	seen := make(map[ID]bool)
	for i := 0; i < 10000; i++ {
		id := g.New()
		if seen[id] {
			t.Fatalf("duplicate ID after %d mints: %s", i, id)
		}
		seen[id] = true
	}
}

func TestGeneratorUniquenessConcurrent(t *testing.T) {
	g := NewGenerator("site")
	const workers, per = 8, 500
	var mu sync.Mutex
	seen := make(map[ID]bool, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]ID, 0, per)
			for i := 0; i < per; i++ {
				local = append(local, g.New())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range local {
				if seen[id] {
					t.Errorf("duplicate concurrent ID %s", id)
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
}

func TestDifferentSitesDifferentFingerprints(t *testing.T) {
	a := NewGenerator("site-a")
	b := NewGenerator("site-b")
	if a.Site() == b.Site() {
		t.Error("distinct site names produced equal fingerprints")
	}
	if a.New().Site() == b.New().Site() {
		t.Error("IDs from distinct sites share fingerprint")
	}
}

// Property: String form always parses back to the same ID.
func TestPropIDRoundTrip(t *testing.T) {
	f := func(raw [16]byte) bool {
		id := ID(raw)
		back, err := ParseID(id.String())
		return err == nil && back == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	g := NewGenerator("s")
	id := g.New()
	obj := &struct{ X int }{X: 1}

	if _, err := r.LookupID(id); !errors.Is(err, ErrUnbound) {
		t.Errorf("LookupID on empty registry: %v", err)
	}
	r.Register(id, obj)
	got, err := r.LookupID(id)
	if err != nil || got != obj {
		t.Fatalf("LookupID = %v, %v", got, err)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}

	if err := r.Bind("payroll", id); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	got, err = r.Lookup("payroll")
	if err != nil || got != obj {
		t.Fatalf("Lookup = %v, %v", got, err)
	}
	rid, err := r.Resolve("payroll")
	if err != nil || rid != id {
		t.Fatalf("Resolve = %v, %v", rid, err)
	}

	// Rebinding the same name to the same id is idempotent.
	if err := r.Bind("payroll", id); err != nil {
		t.Errorf("idempotent Bind: %v", err)
	}
	// Binding to another id fails.
	other := g.New()
	r.Register(other, obj)
	if err := r.Bind("payroll", other); !errors.Is(err, ErrNameTaken) {
		t.Errorf("conflicting Bind: %v", err)
	}
	// Binding an unregistered id fails.
	if err := r.Bind("ghost", g.New()); !errors.Is(err, ErrUnbound) {
		t.Errorf("Bind unregistered: %v", err)
	}

	names := r.Names()
	if len(names) != 1 || names[0] != "payroll" {
		t.Errorf("Names = %v", names)
	}

	r.Unbind("payroll")
	if _, err := r.Lookup("payroll"); !errors.Is(err, ErrUnbound) {
		t.Errorf("Lookup after Unbind: %v", err)
	}
	if _, err := r.LookupID(id); err != nil {
		t.Errorf("object deregistered by Unbind: %v", err)
	}

	if err := r.Bind("p2", id); err != nil {
		t.Fatal(err)
	}
	r.Deregister(id)
	if _, err := r.LookupID(id); !errors.Is(err, ErrUnbound) {
		t.Error("Deregister left object")
	}
	if _, err := r.Lookup("p2"); !errors.Is(err, ErrUnbound) {
		t.Error("Deregister left binding")
	}
}

func TestRegistryRebind(t *testing.T) {
	r := NewRegistry()
	g := NewGenerator("s")
	oldID, newID := g.New(), g.New()
	r.Register(oldID, "old")
	r.Register(newID, "new")
	if err := r.Bind("n", oldID); err != nil {
		t.Fatal(err)
	}

	// Rebind replaces a live binding where Bind refuses.
	if err := r.Bind("n", newID); !errors.Is(err, ErrNameTaken) {
		t.Fatalf("Bind over live binding: %v", err)
	}
	if err := r.Rebind("n", newID); err != nil {
		t.Fatalf("Rebind: %v", err)
	}
	if id, _ := r.Resolve("n"); id != newID {
		t.Errorf("Resolve after Rebind = %v", id)
	}
	// Rebind also creates a binding where none exists.
	if err := r.Rebind("fresh", newID); err != nil {
		t.Fatalf("Rebind fresh name: %v", err)
	}
	// An unregistered target fails and leaves the binding untouched.
	if err := r.Rebind("n", g.New()); !errors.Is(err, ErrUnbound) {
		t.Errorf("Rebind unregistered: %v", err)
	}
	if id, _ := r.Resolve("n"); id != newID {
		t.Errorf("failed Rebind moved the binding: %v", id)
	}
}

// TestRegistryRebindNoUnboundWindow: a name being rebound must stay
// continuously resolvable — Rebind exists precisely because an Unbind/Bind
// pair exposes an unbound window to concurrent lookups.
func TestRegistryRebindNoUnboundWindow(t *testing.T) {
	r := NewRegistry()
	g := NewGenerator("s")
	a, b := g.New(), g.New()
	r.Register(a, "a")
	r.Register(b, "b")
	if err := r.Bind("n", a); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if id, err := r.Resolve("n"); err != nil {
					t.Errorf("name unbound mid-rebind: %v", err)
					return
				} else if id != a && id != b {
					t.Errorf("Resolve = %v, neither binding", id)
					return
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		id := a
		if i%2 == 0 {
			id = b
		}
		if err := r.Rebind("n", id); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	g := NewGenerator("s")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := g.New()
				r.Register(id, i)
				if _, err := r.LookupID(id); err != nil {
					t.Errorf("concurrent LookupID: %v", err)
				}
				r.Deregister(id)
			}
		}()
	}
	wg.Wait()
	if r.Len() != 0 {
		t.Errorf("registry not empty after churn: %d", r.Len())
	}
}

func TestPathParseString(t *testing.T) {
	tests := []struct {
		in      string
		want    Path
		wantErr bool
	}{
		{"tokyo", Path{Site: "tokyo", Segments: []string{}}, false},
		{"tokyo!home!payroll", Path{Site: "tokyo", Segments: []string{"home", "payroll"}}, false},
		{"", Path{}, true},
		{"a!!b", Path{}, true},
		{"!a", Path{}, true},
	}
	for _, tt := range tests {
		got, err := ParsePath(tt.in)
		if tt.wantErr != (err != nil) {
			t.Errorf("ParsePath(%q) err = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if got.String() != tt.in {
			t.Errorf("ParsePath(%q).String() = %q", tt.in, got.String())
		}
		if got.Site != tt.want.Site || len(got.Segments) != len(tt.want.Segments) {
			t.Errorf("ParsePath(%q) = %+v, want %+v", tt.in, got, tt.want)
		}
	}
}

func TestPathChildAndIsLocal(t *testing.T) {
	p, err := ParsePath("osaka!home")
	if err != nil {
		t.Fatal(err)
	}
	c := p.Child("db")
	if c.String() != "osaka!home!db" {
		t.Errorf("Child = %q", c.String())
	}
	// Child must not alias the parent's segment storage.
	c2 := p.Child("other")
	if c.String() != "osaka!home!db" || c2.String() != "osaka!home!other" {
		t.Errorf("Child aliasing: %q, %q", c.String(), c2.String())
	}
	if !p.IsLocal("osaka") || p.IsLocal("tokyo") {
		t.Error("IsLocal wrong")
	}
}
