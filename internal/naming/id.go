// Package naming implements the decentralized identity and naming substrate
// the paper requires: "there should be built-in decentralized mechanisms for
// assigning distinct names for objects" (§1, Identity and Naming). IDs are
// 128-bit values minted locally — no coordination between sites — composed of
// a site fingerprint, a timestamp, a per-generator counter and random bits,
// so collisions across the "very large universe of objects" are negligible.
//
// The package also provides hierarchical paths ("site!container!item") and a
// per-site Registry mapping IDs and human names to live objects.
package naming

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBadID reports an unparseable ID literal.
var ErrBadID = errors.New("malformed object id")

// ID is a 128-bit decentralized object identity.
//
// Layout: bytes 0..3 site fingerprint, 4..9 unix-milli timestamp (48 bits),
// 10..11 generator counter, 12..15 random.
type ID [16]byte

// Nil is the zero ID, used as "no object".
var Nil ID

// IsNil reports whether id is the zero ID.
func (id ID) IsNil() bool { return id == Nil }

// String renders the canonical lower-case hex form, grouped for readability:
// ssssssss-tttttttttttt-cccc-rrrrrrrr.
func (id ID) String() string {
	return fmt.Sprintf("%s-%s-%s-%s",
		hex.EncodeToString(id[0:4]),
		hex.EncodeToString(id[4:10]),
		hex.EncodeToString(id[10:12]),
		hex.EncodeToString(id[12:16]))
}

// Site returns the 32-bit site fingerprint embedded in the ID.
func (id ID) Site() uint32 { return binary.BigEndian.Uint32(id[0:4]) }

// Minted returns the embedded mint timestamp, millisecond precision.
func (id ID) Minted() time.Time {
	var buf [8]byte
	copy(buf[2:], id[4:10])
	ms := binary.BigEndian.Uint64(buf[:])
	return time.UnixMilli(int64(ms)).UTC()
}

// ParseID parses the canonical String form.
func ParseID(s string) (ID, error) {
	var id ID
	if len(s) != 35 || s[8] != '-' || s[21] != '-' || s[26] != '-' {
		return Nil, fmt.Errorf("%w: %q", ErrBadID, s)
	}
	parts := []struct {
		from, to int // positions in s
		at       int // offset in id
	}{
		{0, 8, 0},
		{9, 21, 4},
		{22, 26, 10},
		{27, 35, 12},
	}
	for _, p := range parts {
		b, err := hex.DecodeString(s[p.from:p.to])
		if err != nil {
			return Nil, fmt.Errorf("%w: %q: %v", ErrBadID, s, err)
		}
		copy(id[p.at:], b)
	}
	return id, nil
}

// Generator mints IDs for one site without coordination. The zero value is
// not usable; construct with NewGenerator.
type Generator struct {
	site    uint32
	counter atomic.Uint32
	now     func() time.Time
}

// NewGenerator returns a Generator whose IDs carry a fingerprint of siteName.
func NewGenerator(siteName string) *Generator {
	h := fnv.New32a()
	h.Write([]byte(siteName))
	return &Generator{site: h.Sum32(), now: time.Now}
}

// newGeneratorAt is a test seam fixing the clock.
func newGeneratorAt(siteName string, now func() time.Time) *Generator {
	g := NewGenerator(siteName)
	g.now = now
	return g
}

// New mints a fresh ID. Safe for concurrent use.
func (g *Generator) New() ID {
	var id ID
	binary.BigEndian.PutUint32(id[0:4], g.site)
	ms := uint64(g.now().UnixMilli())
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], ms)
	copy(id[4:10], buf[2:])
	binary.BigEndian.PutUint16(id[10:12], uint16(g.counter.Add(1)))
	if _, err := rand.Read(id[12:16]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to
		// counter-derived bits rather than panicking in a library.
		binary.BigEndian.PutUint32(id[12:16], g.counter.Add(1)*2654435761)
	}
	return id
}

// Site returns the generator's site fingerprint.
func (g *Generator) Site() uint32 { return g.site }

// Registry maps names and IDs to live objects at one site. It is the local
// half of the naming requirement; global uniqueness comes from the IDs
// themselves. The zero value is not usable; construct with NewRegistry.
type Registry struct {
	mu     sync.RWMutex
	byID   map[ID]any
	byName map[string]ID
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byID:   make(map[ID]any),
		byName: make(map[string]ID),
	}
}

// ErrNameTaken reports a Bind against an already-bound human name.
var ErrNameTaken = errors.New("name already bound")

// ErrUnbound reports a lookup of an unknown name or ID.
var ErrUnbound = errors.New("name not bound")

// Register associates id with obj, replacing any previous association.
func (r *Registry) Register(id ID, obj any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byID[id] = obj
}

// Deregister removes id and any human names bound to it.
func (r *Registry) Deregister(id ID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.byID, id)
	for name, bound := range r.byName {
		if bound == id {
			delete(r.byName, name)
		}
	}
}

// Bind gives id a human-readable name. Names are unique per site.
func (r *Registry) Bind(name string, id ID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byName[name]; ok && prev != id {
		return fmt.Errorf("%w: %q", ErrNameTaken, name)
	}
	if _, ok := r.byID[id]; !ok {
		return fmt.Errorf("%w: id %s not registered", ErrUnbound, id)
	}
	r.byName[name] = id
	return nil
}

// Rebind points name at id atomically, replacing any previous binding.
// Unlike an Unbind/Bind pair, the name never passes through an unbound
// window: a concurrent Lookup sees either the old object or the new one,
// never "name not bound". The id must already be registered.
func (r *Registry) Rebind(name string, id ID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byID[id]; !ok {
		return fmt.Errorf("%w: id %s not registered", ErrUnbound, id)
	}
	r.byName[name] = id
	return nil
}

// Unbind removes a human name, leaving the object registered.
func (r *Registry) Unbind(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.byName, name)
}

// LookupID returns the object registered under id.
func (r *Registry) LookupID(id ID) (any, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	obj, ok := r.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %s", ErrUnbound, id)
	}
	return obj, nil
}

// Lookup resolves a human name to its object.
func (r *Registry) Lookup(name string) (any, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	id, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnbound, name)
	}
	obj, ok := r.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q (stale binding)", ErrUnbound, name)
	}
	return obj, nil
}

// Resolve returns the ID bound to a human name.
func (r *Registry) Resolve(name string) (ID, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	id, ok := r.byName[name]
	if !ok {
		return Nil, fmt.Errorf("%w: %q", ErrUnbound, name)
	}
	return id, nil
}

// Names returns all bound human names, in no particular order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	return names
}

// Len reports the number of registered objects.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byID)
}
