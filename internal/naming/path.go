package naming

import (
	"fmt"
	"strings"
)

// Path is a hierarchical object name of the form "site!segment!segment…",
// used by interoperability programs to address items across sites, e.g.
// "tokyo!home!payroll" or "tokyo!vicinity!osaka". The separator '!' is
// chosen so segments can be ordinary identifiers and object names.
type Path struct {
	Site     string
	Segments []string
}

// ParsePath parses the textual form. The site part is mandatory; segments
// may be empty (addressing the site's IOO itself).
func ParsePath(s string) (Path, error) {
	if s == "" {
		return Path{}, fmt.Errorf("%w: empty path", ErrBadID)
	}
	parts := strings.Split(s, "!")
	for i, p := range parts {
		if p == "" {
			return Path{}, fmt.Errorf("%w: empty segment %d in %q", ErrBadID, i, s)
		}
	}
	return Path{Site: parts[0], Segments: parts[1:]}, nil
}

// String renders the canonical textual form.
func (p Path) String() string {
	if len(p.Segments) == 0 {
		return p.Site
	}
	return p.Site + "!" + strings.Join(p.Segments, "!")
}

// Child returns p extended by one segment.
func (p Path) Child(segment string) Path {
	segs := make([]string, 0, len(p.Segments)+1)
	segs = append(segs, p.Segments...)
	segs = append(segs, segment)
	return Path{Site: p.Site, Segments: segs}
}

// IsLocal reports whether p addresses the given site.
func (p Path) IsLocal(site string) bool { return p.Site == site }
