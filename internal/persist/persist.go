package persist

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/naming"
	"repro/internal/wire"
)

// SaveObject has the object write itself (its image) into the slot named
// by its identity. The store is the host's allocated space; the content is
// entirely the object's own (self-contained persistence).
func SaveObject(store Store, obj *core.Object) error {
	img, err := obj.Snapshot()
	if err != nil {
		return fmt.Errorf("persist %s: %w", obj.ID(), err)
	}
	if err := store.Put(img.ID.String(), wire.EncodeImage(img)); err != nil {
		return fmt.Errorf("persist %s: %w", obj.ID(), err)
	}
	return nil
}

// EncodeObject snapshots an object and returns the slot name and encoded
// image that SaveObject would write, without touching a store. Callers
// assembling a batch for Backend.PutAll use this to pay one durability
// barrier for a whole checkpoint instead of one per object.
func EncodeObject(obj *core.Object) (slot string, data []byte, err error) {
	img, err := obj.Snapshot()
	if err != nil {
		return "", nil, fmt.Errorf("persist %s: %w", obj.ID(), err)
	}
	return img.ID.String(), wire.EncodeImage(img), nil
}

// LoadObject bootstraps one object from its slot.
func LoadObject(store Store, slot string, reg *core.BehaviorRegistry,
	opts ...core.MaterializeOption) (*core.Object, error) {
	data, err := store.Get(slot)
	if err != nil {
		return nil, fmt.Errorf("bootstrap %q: %w", slot, err)
	}
	img, err := wire.DecodeImage(data)
	if err != nil {
		return nil, fmt.Errorf("bootstrap %q: %w", slot, err)
	}
	obj, err := core.FromImage(img, reg, opts...)
	if err != nil {
		return nil, fmt.Errorf("bootstrap %q: %w", slot, err)
	}
	return obj, nil
}

// DeleteObject removes a persisted object's slot.
func DeleteObject(store Store, id naming.ID) error {
	return store.Delete(id.String())
}

// Bootstrap loads every object in the store — the host's start-up
// procedure. Slots that fail to load are reported through onErr (nil
// panics on nothing; errors are skipped silently when onErr is nil) and
// skipped, so one corrupt slot cannot block a site from starting.
func Bootstrap(store Store, reg *core.BehaviorRegistry,
	onErr func(slot string, err error), opts ...core.MaterializeOption) ([]*core.Object, error) {
	slots, err := store.List()
	if err != nil {
		return nil, fmt.Errorf("bootstrap: %w", err)
	}
	out := make([]*core.Object, 0, len(slots))
	for _, slot := range slots {
		obj, err := LoadObject(store, slot, reg, opts...)
		if err != nil {
			if onErr != nil {
				onErr(slot, err)
			}
			continue
		}
		out = append(out, obj)
	}
	return out, nil
}
