package persist

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
)

// Snapshot compaction (DESIGN.md §15): once enough of the log is garbage
// — overwritten records, tombstones and what they buried — the live
// records are rewritten into one fresh segment and the manifest is
// atomically swapped to [compacted, active...]. The swap is the only
// commit point, so a crash anywhere during compaction recovers either the
// old generation (the compacted output is an unreferenced stray, swept at
// open) or the new one (the retired inputs are strays, swept at open) —
// never a mix.
//
// Writers are never blocked by the heavy phase: the copy reads only
// sealed (immutable) segments and writes a file the manifest does not
// reference yet. flushMu is held only to seal the active segment at the
// start and to swap the manifest at the end. A record overwritten or
// deleted while the copy runs simply loses the swap race — the index
// entry is replaced only if it still points at the pre-compaction
// location — and its stale copy in the new segment becomes garbage for
// the next cycle (replay order keeps it harmless: the compacted segment
// replays first).

// shouldCompactLocked is the background trigger. Caller holds mu.
func (w *WALStore) shouldCompactLocked() bool {
	return !w.opt.DisableAutoCompact && !w.compacting && !w.closed && w.poisoned == nil &&
		len(w.segs) >= 1 && w.total >= w.opt.MinCompactBytes &&
		float64(w.garbage) >= w.opt.GarbageRatio*float64(w.total)
}

// compactBG runs one background compaction; the trigger already set
// w.compacting and added to the wait group.
func (w *WALStore) compactBG() {
	defer w.compactWG.Done()
	err := w.compactOnce()
	w.mu.Lock()
	w.compacting = false
	w.compactErr = err
	w.cond.Broadcast()
	w.mu.Unlock()
}

// Compact runs one compaction cycle synchronously (waiting out any
// background cycle already in flight). Mostly for tests and maintenance.
func (w *WALStore) Compact() error {
	w.mu.Lock()
	for w.compacting {
		w.cond.Wait()
	}
	if err := w.usableLocked(); err != nil {
		w.mu.Unlock()
		return err
	}
	w.compacting = true
	w.mu.Unlock()
	err := w.compactOnce()
	w.mu.Lock()
	w.compacting = false
	w.compactErr = err
	w.cond.Broadcast()
	w.mu.Unlock()
	return err
}

// compactOnce performs one full cycle: seal, snapshot, copy, swap,
// retire.
func (w *WALStore) compactOnce() error {
	// Seal: roll the active segment so every compactable record lives in
	// an immutable file, then remember the sealed set.
	w.flushMu.Lock()
	if w.active().size > 0 {
		if err := w.roll(); err != nil {
			w.flushMu.Unlock()
			return err
		}
	}
	sealed := append([]*segment(nil), w.segs[:len(w.segs)-1]...)
	seq := w.nextSeq
	w.nextSeq++
	w.flushMu.Unlock()
	if len(sealed) == 0 {
		return nil
	}
	sealedSet := make(map[*segment]bool, len(sealed))
	for _, s := range sealed {
		sealedSet[s] = true
	}

	// Snapshot: the live records inside the sealed set, as of now.
	w.mu.Lock()
	snap := make(map[string]slotRef)
	for k, ref := range w.index {
		if sealedSet[ref.seg] {
			snap[k] = ref
		}
	}
	w.mu.Unlock()

	// Copy: stream each live record, CRC re-verified, into the new
	// segment. No lock held — inputs are immutable, the output is
	// invisible until the manifest swap.
	out, err := createSegment(w.dir, seq)
	if err != nil {
		return err
	}
	abort := func(err error) error {
		out.f.Close()
		os.Remove(filepath.Join(w.dir, out.name))
		return err
	}
	bw := bufio.NewWriterSize(out.f, 1<<20)
	newRefs := make(map[string]slotRef, len(snap))
	var off int64
	for k, ref := range snap {
		raw := make([]byte, ref.recLen)
		if _, err := ref.seg.f.ReadAt(raw, ref.off); err != nil {
			return abort(fmt.Errorf("compact wal: read %q: %w", k, err))
		}
		if _, _, _, _, err := parseRecord(raw); err != nil {
			return abort(fmt.Errorf("compact wal: %q: %w", k, err))
		}
		if _, err := bw.Write(raw); err != nil {
			return abort(fmt.Errorf("compact wal: %w", err))
		}
		newRefs[k] = slotRef{seg: out, off: off, recLen: ref.recLen}
		off += ref.recLen
	}
	if err := bw.Flush(); err != nil {
		return abort(fmt.Errorf("compact wal: %w", err))
	}
	if err := out.f.Sync(); err != nil {
		return abort(fmt.Errorf("compact wal: %w", err))
	}
	out.size = off

	// Swap: new manifest = [compacted] + everything not compacted (in
	// order), then redirect surviving index entries and retire inputs.
	w.flushMu.Lock()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		w.flushMu.Unlock()
		return abort(fmt.Errorf("compact wal: %w", ErrClosed))
	}
	keep := make([]*segment, 0, len(w.segs)-len(sealed)+1)
	keep = append(keep, out)
	for _, s := range w.segs {
		if !sealedSet[s] {
			keep = append(keep, s)
		}
	}
	names := make([]string, len(keep))
	for i, s := range keep {
		names[i] = s.name
	}
	if err := writeManifest(w.dir, names); err != nil {
		w.mu.Unlock()
		w.flushMu.Unlock()
		return abort(err)
	}
	w.segs = keep
	for k, oldRef := range snap {
		if cur, ok := w.index[k]; ok && cur.seg == oldRef.seg && cur.off == oldRef.off {
			w.index[k] = newRefs[k]
		}
	}
	var total, live int64
	for _, s := range w.segs {
		total += s.size
	}
	for _, ref := range w.index {
		live += ref.recLen
	}
	w.total, w.garbage = total, total-live
	for _, s := range sealed {
		w.retired = append(w.retired, s)
		os.Remove(filepath.Join(w.dir, s.name))
	}
	w.mu.Unlock()
	w.flushMu.Unlock()
	// Make the unlinks durable; the swept-at-open path covers a crash
	// before this lands.
	return syncPath(w.dir)
}
