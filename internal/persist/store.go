// Package persist implements the self-containment requirement's persistence
// half (§1): "a long-lived persistent mobile object should contain its own
// persistence scheme and be able to write itself to disk on a space
// allocated for it by the host environment, as well as read itself into
// memory following some bootstrap procedure initiated by the host
// environment."
//
// The host side is a Store — it only allocates named slots of bytes. The
// object side writes its own image (via its Snapshot) into the slot, and
// Bootstrap re-materializes objects from their slots. Integrity is checked
// with a per-slot checksum so a torn write surfaces as an error, not as a
// corrupted object.
package persist

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Errors of the persistence substrate.
var (
	// ErrNoSlot reports a read of an unallocated slot.
	ErrNoSlot = errors.New("no such slot")
	// ErrCorrupt reports a slot whose checksum does not match its content.
	ErrCorrupt = errors.New("slot content corrupt")
	// ErrClosed reports an operation against a closed backend.
	ErrClosed = errors.New("store closed")
)

// Store is the host-allocated space objects persist themselves into — the
// object-facing subset of the contract: an object writing itself to disk
// needs nothing beyond named slots of bytes. Implementations must be safe
// for concurrent use.
type Store interface {
	// Put writes data into a slot, replacing previous content atomically.
	Put(slot string, data []byte) error
	// Get reads a slot's content.
	Get(slot string) ([]byte, error)
	// Delete removes a slot; deleting a missing slot is not an error.
	Delete(slot string) error
	// List returns all slot names, sorted.
	List() ([]string, error)
}

// Backend is the full host-side storage contract: Store plus the batch
// and lifecycle operations a site needs to checkpoint many objects
// cheaply. All implementations are exercised by one conformance suite
// (conformance_test.go) so they stay behaviorally interchangeable — the
// substrate can evolve (file-per-slot → log-structured) without the
// object-side persistence scheme noticing.
type Backend interface {
	Store
	// PutAll writes a batch of slots through one durability barrier:
	// when it returns nil every slot in the batch is durable. Cheaper
	// than len(batch) Puts wherever the implementation can amortize its
	// sync cost (the WAL's group commit, FileStore's single dir-fsync).
	// Batch visibility is per-slot, not transactional: a crash mid-batch
	// may persist a prefix of the batch.
	PutAll(batch map[string][]byte) error
	// Sync is a durability barrier: it returns once every previously
	// acknowledged write is on stable storage.
	Sync() error
	// Close flushes and releases the backend. Operations on a closed
	// backend may fail with ErrClosed. Close is idempotent.
	Close() error
}

// MemStore is an in-memory Store for tests and ephemeral sites.
type MemStore struct {
	mu sync.RWMutex
	m  map[string][]byte
}

var _ Backend = (*MemStore)(nil)

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{m: make(map[string][]byte)} }

// PutAll implements Backend under one lock acquisition.
func (s *MemStore) PutAll(batch map[string][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for slot, data := range batch {
		cp := make([]byte, len(data))
		copy(cp, data)
		s.m[slot] = cp
	}
	return nil
}

// Sync implements Backend; memory has no stable storage to reach.
func (s *MemStore) Sync() error { return nil }

// Close implements Backend. The store stays usable — an in-memory store
// has nothing to release, and chaos-restart tests reuse it as the
// "disk" that survives a simulated crash.
func (s *MemStore) Close() error { return nil }

// Put implements Store.
func (s *MemStore) Put(slot string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[slot] = cp
	return nil
}

// Get implements Store.
func (s *MemStore) Get(slot string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.m[slot]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSlot, slot)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Delete implements Store.
func (s *MemStore) Delete(slot string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, slot)
	return nil
}

// List implements Store.
func (s *MemStore) List() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// FileStore persists slots as files in a directory, one file per slot,
// written atomically (temp file + rename) with a CRC32 integrity header.
type FileStore struct {
	dir string
	mu  sync.Mutex
}

var _ Backend = (*FileStore)(nil)

const slotSuffix = ".slot"

// NewFileStore creates (if needed) and opens a directory-backed store.
// Orphaned put-* temp files — left by a crash between CreateTemp and
// rename, or by a Put whose error path could not unlink — are swept here:
// they are invisible to Get/List but would otherwise accumulate forever.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("open store: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("open store: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "put-") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return &FileStore{dir: dir}, nil
}

// Dir returns the backing directory.
func (s *FileStore) Dir() string { return s.dir }

// slotFile encodes a slot name to a safe file name (hex of the name).
func (s *FileStore) slotFile(slot string) string {
	return filepath.Join(s.dir, hex.EncodeToString([]byte(slot))+slotSuffix)
}

// Put implements Store with an atomic write: content is framed as
// [crc32:4][len:8][data], written to a temp file, fsynced, renamed.
func (s *FileStore) Put(slot string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.putLocked(slot, data); err != nil {
		return err
	}
	// The rename is atomic against a process crash, but the directory
	// entry itself is not durable until the directory is fsynced — without
	// this a power loss can forget the replace entirely.
	if err := s.syncDir(); err != nil {
		return fmt.Errorf("put %q: %w", slot, err)
	}
	return nil
}

// putLocked writes one slot up to (not including) the directory fsync.
// Every failure path unlinks the temp file, so a failed Put never strands
// a put-* orphan (a crash still can; NewFileStore sweeps those).
func (s *FileStore) putLocked(slot string, data []byte) error {
	framed := make([]byte, 12+len(data))
	binary.BigEndian.PutUint32(framed[0:4], crc32.ChecksumIEEE(data))
	binary.BigEndian.PutUint64(framed[4:12], uint64(len(data)))
	copy(framed[12:], data)

	tmp, err := os.CreateTemp(s.dir, "put-*")
	if err != nil {
		return fmt.Errorf("put %q: %w", slot, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(framed); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("put %q: %w", slot, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("put %q: %w", slot, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("put %q: %w", slot, err)
	}
	if err := os.Rename(tmpName, s.slotFile(slot)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("put %q: %w", slot, err)
	}
	return nil
}

// PutAll implements Backend: each slot is written atomically as in Put,
// but the whole batch shares one directory fsync — at bootstrap-checkpoint
// scale that halves the sync count per slot.
func (s *FileStore) PutAll(batch map[string][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for slot, data := range batch {
		if err := s.putLocked(slot, data); err != nil {
			return err
		}
	}
	if len(batch) == 0 {
		return nil
	}
	if err := s.syncDir(); err != nil {
		return fmt.Errorf("put batch: %w", err)
	}
	return nil
}

// Sync implements Backend. Every Put/Delete is already durable when it
// returns, so only the directory entry state needs (re)flushing.
func (s *FileStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncDir()
}

// Close implements Backend. The store holds no open handles between
// operations, so there is nothing to release; the store stays usable.
func (s *FileStore) Close() error { return nil }

// syncDir fsyncs the store directory, making renames and removals durable
// against power loss (not just process crashes).
func (s *FileStore) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Get implements Store, verifying the integrity header. It takes the
// store mutex: POSIX rename is atomic, but the store does not assume the
// backing filesystem is (overlay and network filesystems have weaker
// guarantees), so reads never observe a Put's rename mid-flight, and a
// slot returned by List cannot vanish under a Get that follows it while
// no Delete intervenes.
func (s *FileStore) Get(slot string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	framed, err := os.ReadFile(s.slotFile(slot))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %q", ErrNoSlot, slot)
		}
		return nil, fmt.Errorf("get %q: %w", slot, err)
	}
	if len(framed) < 12 {
		return nil, fmt.Errorf("%w: %q: short header", ErrCorrupt, slot)
	}
	wantSum := binary.BigEndian.Uint32(framed[0:4])
	wantLen := binary.BigEndian.Uint64(framed[4:12])
	data := framed[12:]
	if uint64(len(data)) != wantLen {
		return nil, fmt.Errorf("%w: %q: length %d, header says %d", ErrCorrupt, slot, len(data), wantLen)
	}
	if crc32.ChecksumIEEE(data) != wantSum {
		return nil, fmt.Errorf("%w: %q: checksum mismatch", ErrCorrupt, slot)
	}
	return data, nil
}

// Delete implements Store. The removal is fsynced into the directory so a
// deleted slot cannot reappear after power loss.
func (s *FileStore) Delete(slot string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := os.Remove(s.slotFile(slot))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("delete %q: %w", slot, err)
	}
	if err := s.syncDir(); err != nil {
		return fmt.Errorf("delete %q: %w", slot, err)
	}
	return nil
}

// List implements Store, under the same mutex as Put/Delete (see Get).
func (s *FileStore) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("list store: %w", err)
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, slotSuffix) {
			continue
		}
		raw, err := hex.DecodeString(strings.TrimSuffix(name, slotSuffix))
		if err != nil {
			continue // foreign file; not ours
		}
		out = append(out, string(raw))
	}
	sort.Strings(out)
	return out, nil
}
