package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// WALStore is a log-structured Backend: every mutation is one record
// appended to the active segment, an in-memory index maps each slot to
// the file offset of its newest record, and background compaction
// rewrites live records into a fresh segment once enough of the log is
// garbage (DESIGN.md §15).
//
// Durability is amortized by group commit: concurrent writers stage
// records into a shared batch while one of them — the leader — appends
// the previous batch with a single write and a single fsync. Under K
// concurrent writers the log pays ~1/K of an fsync per record, where the
// file-per-slot FileStore pays a file fsync plus a directory fsync per
// record under a global mutex.
type WALStore struct {
	dir string
	opt WALOptions

	// mu guards the staging batch, the index, the accounting counters and
	// the lifecycle flags. It is never held across file I/O.
	mu       sync.Mutex
	cond     *sync.Cond // batch completion, leader handoff, compaction state
	cur      *walBatch  // staging batch; nil when empty
	flushing bool       // a leader is appending batches
	closed   bool
	poisoned error // an append failed and could not be rolled back

	index   map[string]slotRef
	total   int64 // bytes of records in all manifest segments
	garbage int64 // bytes of those no index entry references

	// segs is the manifest order, last entry active. The slice is
	// replaced only while holding BOTH mu and flushMu, so holding either
	// one is enough to read it.
	segs    []*segment
	retired []*segment // unlinked by compaction; closed at Close (readers may still hold refs)

	compacting bool
	compactWG  sync.WaitGroup
	compactErr error // last background compaction failure, for Stats/tests

	// flushMu serializes everything that touches segment files for
	// writing: batch appends, segment rolls and manifest swaps. nextSeq
	// is guarded by it.
	flushMu sync.Mutex
	nextSeq uint64
}

var _ Backend = (*WALStore)(nil)

// WALOptions tunes a WALStore. The zero value means defaults.
type WALOptions struct {
	// SegmentBytes is the roll threshold: a batch that would grow the
	// active segment past it seals the segment first. Default 64 MiB.
	SegmentBytes int64
	// GarbageRatio is the compaction trigger: once garbage/total crosses
	// it (and total exceeds MinCompactBytes), a background compaction
	// rewrites live records into a new segment. Default 0.5.
	GarbageRatio float64
	// MinCompactBytes is the log size below which compaction never
	// triggers. Default 4 MiB.
	MinCompactBytes int64
	// DisableAutoCompact turns the background trigger off; Compact can
	// still be called explicitly (tests, maintenance windows).
	DisableAutoCompact bool
}

func (o WALOptions) withDefaults() WALOptions {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.GarbageRatio <= 0 {
		o.GarbageRatio = 0.5
	}
	if o.MinCompactBytes <= 0 {
		o.MinCompactBytes = 4 << 20
	}
	return o
}

// walOp is one staged mutation; seg/off are assigned by the flush that
// makes it durable.
type walOp struct {
	kind byte
	key  string
	rec  []byte
	seg  *segment
	off  int64
}

// walBatch is one group-commit unit: records staged by concurrent
// callers, made durable by one leader append+fsync.
type walBatch struct {
	ops  []walOp
	done bool
	err  error
}

// NewWALStore opens (creating if needed) a WAL store with default
// options.
func NewWALStore(dir string) (*WALStore, error) { return OpenWALStore(dir, WALOptions{}) }

// OpenWALStore opens a WAL store, running bootstrap recovery: the
// manifest names the live segments, each is replayed into the in-memory
// index, a torn tail on the active segment is truncated away, and stray
// files from a crashed compaction or manifest swap are swept.
func OpenWALStore(dir string, opt WALOptions) (*WALStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("open wal: %w", err)
	}
	w := &WALStore{
		dir:     dir,
		opt:     opt.withDefaults(),
		index:   make(map[string]slotRef),
		nextSeq: 1,
	}
	w.cond = sync.NewCond(&w.mu)
	names, haveManifest, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if !haveManifest {
		seg, err := createSegment(dir, w.nextSeq)
		if err != nil {
			return nil, err
		}
		w.nextSeq++
		if err := writeManifest(dir, []string{seg.name}); err != nil {
			seg.f.Close()
			os.Remove(filepath.Join(dir, seg.name))
			return nil, err
		}
		w.segs = []*segment{seg}
		return w, nil
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%w: wal manifest names no segments", ErrCorrupt)
	}
	if err := sweepStrays(dir, names); err != nil {
		return nil, err
	}
	for i, name := range names {
		seq, err := parseSegName(name)
		if err != nil {
			return nil, err
		}
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("%w: wal manifest names missing segment %s", ErrCorrupt, name)
		}
		seg := &segment{name: name, seq: seq, f: f}
		active := i == len(names)-1
		err = replaySegment(seg, active, func(kind byte, key string, off, recLen int64) {
			old, had := w.index[key]
			w.total += recLen
			switch kind {
			case recPut:
				w.index[key] = slotRef{seg: seg, off: off, recLen: recLen}
			case recDelete:
				w.garbage += recLen
				delete(w.index, key)
			}
			if had {
				w.garbage += old.recLen
			}
		})
		if err != nil {
			f.Close()
			for _, s := range w.segs {
				s.f.Close()
			}
			return nil, err
		}
		if seg.seq >= w.nextSeq {
			w.nextSeq = seg.seq + 1
		}
		w.segs = append(w.segs, seg)
	}
	return w, nil
}

// createSegment creates an empty segment file. Its directory entry
// becomes durable with the next manifest write's directory fsync.
func createSegment(dir string, seq uint64) (*segment, error) {
	name := segName(seq)
	f, err := os.OpenFile(filepath.Join(dir, name), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("open wal: %w", err)
	}
	return &segment{name: name, seq: seq, f: f}, nil
}

// parseSegName recovers a segment's sequence number from its file name.
func parseSegName(name string) (uint64, error) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, fmt.Errorf("%w: wal manifest names foreign file %q", ErrCorrupt, name)
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 16, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: wal manifest names foreign file %q", ErrCorrupt, name)
	}
	return seq, nil
}

// sweepStrays removes segment files the manifest does not name (a crashed
// compaction's output, or inputs it had already retired) and leftover
// manifest temp files. They are dead by construction: the manifest swap
// is the commit point.
func sweepStrays(dir string, live []string) error {
	liveSet := make(map[string]bool, len(live))
	for _, n := range live {
		liveSet[n] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("open wal: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || liveSet[name] {
			continue
		}
		stray := strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix)
		stray = stray || (strings.HasPrefix(name, "manifest-") && strings.HasSuffix(name, ".tmp"))
		if stray {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return fmt.Errorf("open wal: sweep %s: %w", name, err)
			}
		}
	}
	return nil
}

// Dir returns the backing directory.
func (w *WALStore) Dir() string { return w.dir }

// active returns the append segment. Callers must hold mu or flushMu.
func (w *WALStore) active() *segment { return w.segs[len(w.segs)-1] }

// Put implements Store: one record through the group commit.
func (w *WALStore) Put(slot string, data []byte) error {
	return w.commit([]walOp{{kind: recPut, key: slot, rec: encodeRecord(nil, recPut, slot, data)}})
}

// PutAll implements Backend: the whole batch rides one group-commit
// entry, so it costs one fsync no matter how many slots it carries (and
// shares even that with concurrent committers).
func (w *WALStore) PutAll(batch map[string][]byte) error {
	ops := make([]walOp, 0, len(batch))
	for slot, data := range batch {
		ops = append(ops, walOp{kind: recPut, key: slot, rec: encodeRecord(nil, recPut, slot, data)})
	}
	return w.commit(ops)
}

// Delete implements Store: a tombstone record through the group commit.
// Deleting a missing slot still logs a tombstone (the pre-check would
// race concurrent Puts); replay treats it as a no-op.
func (w *WALStore) Delete(slot string) error {
	return w.commit([]walOp{{kind: recDelete, key: slot, rec: encodeRecord(nil, recDelete, slot, nil)}})
}

// Sync implements Backend: an empty commit, which still rides the flush
// queue and fsyncs the active segment — a true barrier behind every
// previously acknowledged write.
func (w *WALStore) Sync() error { return w.commit(nil) }

// commit stages ops into the current batch and sees them to durability:
// if a leader is already flushing, wait for the batch's completion;
// otherwise become the leader and flush staged batches until the staging
// area drains.
func (w *WALStore) commit(ops []walOp) error {
	w.mu.Lock()
	if err := w.usableLocked(); err != nil {
		w.mu.Unlock()
		return err
	}
	if w.cur == nil {
		w.cur = &walBatch{}
	}
	mine := w.cur
	mine.ops = append(mine.ops, ops...)
	if w.flushing {
		for !mine.done {
			w.cond.Wait()
		}
		err := mine.err
		w.mu.Unlock()
		return err
	}
	w.flushing = true
	for w.cur != nil {
		// Group-commit window: yield once so writers just woken by the
		// previous batch's broadcast (and any still runnable) stage their
		// next op before this batch is taken. Without it the cohorts
		// alternate batches on few cores and the average batch — and with
		// it the fsync amortization — halves.
		w.mu.Unlock()
		runtime.Gosched()
		w.mu.Lock()
		b := w.cur
		if b == nil {
			break
		}
		w.cur = nil
		w.mu.Unlock()
		err := w.flushBatch(b)
		w.mu.Lock()
		b.done = true
		b.err = err
		if err == nil {
			w.applyBatch(b)
		}
		w.cond.Broadcast()
	}
	w.flushing = false
	if w.shouldCompactLocked() {
		w.compacting = true
		w.compactWG.Add(1)
		go w.compactBG()
	}
	w.cond.Broadcast()
	err := mine.err
	w.mu.Unlock()
	return err
}

// usableLocked reports whether the store can accept writes.
func (w *WALStore) usableLocked() error {
	if w.closed {
		return fmt.Errorf("wal %s: %w", w.dir, ErrClosed)
	}
	if w.poisoned != nil {
		return fmt.Errorf("wal %s: %w", w.dir, w.poisoned)
	}
	return nil
}

// flushBatch appends one batch to the active segment and fsyncs it,
// rolling to a fresh segment first if the batch would overflow it. On an
// append error the segment is truncated back; if even that fails the
// store is poisoned — the tail is no longer trustworthy for appends
// (reads and recovery stay safe: the CRC frame bounds the damage).
func (w *WALStore) flushBatch(b *walBatch) error {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	var total int64
	for i := range b.ops {
		total += int64(len(b.ops[i].rec))
	}
	act := w.active()
	if act.size > 0 && act.size+total > w.opt.SegmentBytes {
		if err := w.roll(); err != nil {
			return err
		}
		act = w.active()
	}
	buf := make([]byte, 0, total)
	off := act.size
	for i := range b.ops {
		op := &b.ops[i]
		op.seg = act
		op.off = off
		off += int64(len(op.rec))
		buf = append(buf, op.rec...)
	}
	if len(buf) > 0 {
		if _, err := act.f.WriteAt(buf, act.size); err != nil {
			w.rollback(act)
			return fmt.Errorf("wal append: %w", err)
		}
	}
	if err := act.f.Sync(); err != nil {
		w.rollback(act)
		return fmt.Errorf("wal sync: %w", err)
	}
	act.size = off
	return nil
}

// rollback truncates a failed append off the active segment; failure to
// do so poisons the store against further writes.
func (w *WALStore) rollback(act *segment) {
	if err := act.f.Truncate(act.size); err != nil {
		w.mu.Lock()
		w.poisoned = fmt.Errorf("append failed and tail not recoverable: %v", err)
		w.mu.Unlock()
	}
}

// roll seals the active segment and opens a successor, publishing it in
// the manifest. Caller holds flushMu.
func (w *WALStore) roll() error {
	seg, err := createSegment(w.dir, w.nextSeq)
	if err != nil {
		return err
	}
	w.nextSeq++
	names := make([]string, 0, len(w.segs)+1)
	for _, s := range w.segs {
		names = append(names, s.name)
	}
	names = append(names, seg.name)
	if err := writeManifest(w.dir, names); err != nil {
		seg.f.Close()
		os.Remove(filepath.Join(w.dir, seg.name))
		return err
	}
	w.mu.Lock()
	w.segs = append(w.segs, seg)
	w.mu.Unlock()
	return nil
}

// applyBatch publishes a durable batch into the index and the garbage
// accounting. Caller holds mu; readers therefore only ever see fsynced
// records.
func (w *WALStore) applyBatch(b *walBatch) {
	for i := range b.ops {
		op := &b.ops[i]
		recLen := int64(len(op.rec))
		old, had := w.index[op.key]
		w.total += recLen
		switch op.kind {
		case recPut:
			w.index[op.key] = slotRef{seg: op.seg, off: op.off, recLen: recLen}
		case recDelete:
			w.garbage += recLen
			delete(w.index, op.key)
		}
		if had {
			w.garbage += old.recLen
		}
	}
}

// Get implements Store: index lookup under mu, then a positioned read of
// the CRC-framed record, re-verified on every read so a disk-level flip
// surfaces as ErrCorrupt rather than as a corrupted object.
func (w *WALStore) Get(slot string) ([]byte, error) {
	w.mu.Lock()
	ref, ok := w.index[slot]
	w.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSlot, slot)
	}
	raw := make([]byte, ref.recLen)
	if _, err := ref.seg.f.ReadAt(raw, ref.off); err != nil {
		return nil, fmt.Errorf("get %q: %w", slot, err)
	}
	_, key, val, _, err := parseRecord(raw)
	if err != nil {
		return nil, fmt.Errorf("get %q: %w", slot, err)
	}
	if key != slot {
		return nil, fmt.Errorf("%w: %q: index points at record for %q", ErrCorrupt, slot, key)
	}
	return val, nil
}

// Delete of the index entry happens in applyBatch; List reads the index.
func (w *WALStore) List() ([]string, error) {
	w.mu.Lock()
	out := make([]string, 0, len(w.index))
	for k := range w.index {
		out = append(out, k)
	}
	w.mu.Unlock()
	sort.Strings(out)
	return out, nil
}

// Close implements Backend: it waits out in-flight flushes and any
// running compaction, then releases every file handle. Idempotent;
// operations after Close fail with ErrClosed.
func (w *WALStore) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	for w.flushing || w.cur != nil {
		w.cond.Wait()
	}
	w.mu.Unlock()
	w.compactWG.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, s := range w.segs {
		s.f.Close()
	}
	for _, s := range w.retired {
		s.f.Close()
	}
	return nil
}

// WALStats is a point-in-time view of the log's shape, for tests,
// operators and the compaction trigger's observability.
type WALStats struct {
	Segments     int
	TotalBytes   int64
	GarbageBytes int64
	Slots        int
	Compacting   bool
	CompactErr   error
}

// Stats returns current log statistics.
func (w *WALStore) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WALStats{
		Segments:     len(w.segs),
		TotalBytes:   w.total,
		GarbageBytes: w.garbage,
		Slots:        len(w.index),
		Compacting:   w.compacting,
		CompactErr:   w.compactErr,
	}
}
