package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// The WAL's on-disk grammar (DESIGN.md §15).
//
// A segment file is a sequence of CRC-framed records:
//
//	[crc32:4][kind:1][klen:4][vlen:4][key:klen][value:vlen]
//
// The checksum covers everything after itself (kind through value), so a
// torn write — a crash mid-append — is detected at the exact record where
// bytes stop being trustworthy and the segment is truncated back to the
// last whole record. kind is recPut or recDelete (a tombstone, vlen 0).
//
// The manifest file names the live segments in replay order. It is
// replaced atomically (temp + rename + dir fsync), which is what makes
// compaction crash-safe: at any instant the directory contains one valid
// manifest naming one complete generation of the data.

const (
	recPut    = 1
	recDelete = 2

	recHeaderLen = 13

	manifestName  = "wal-manifest"
	manifestMagic = "walv1"
	segPrefix     = "seg-"
	segSuffix     = ".wal"
)

// segName renders the file name of segment seq.
func segName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, seq, segSuffix)
}

// segment is one log file. Only the last segment of the manifest (the
// active one) is ever appended to; sealed segments are immutable and are
// only read (Get, replay, compaction) until compaction unlinks them.
type segment struct {
	name string // file name within the store directory
	seq  uint64
	f    *os.File
	size int64 // bytes of whole records; the append offset for the active segment
}

// slotRef locates one slot's newest record inside a segment.
type slotRef struct {
	seg    *segment
	off    int64 // record start
	recLen int64
}

// encodeRecord appends one framed record to buf and returns the extended
// buffer.
func encodeRecord(buf []byte, kind byte, key string, val []byte) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, kind)
	var lens [8]byte
	binary.BigEndian.PutUint32(lens[0:4], uint32(len(key)))
	binary.BigEndian.PutUint32(lens[4:8], uint32(len(val)))
	buf = append(buf, lens[:]...)
	buf = append(buf, key...)
	buf = append(buf, val...)
	binary.BigEndian.PutUint32(buf[start:start+4], crc32.ChecksumIEEE(buf[start+4:]))
	return buf
}

// recordLen returns the framed size of a record with the given key/value
// lengths.
func recordLen(klen, vlen int) int64 { return int64(recHeaderLen + klen + vlen) }

// parseRecord validates the record at the start of raw and returns its
// kind, key, value and framed length. io.ErrUnexpectedEOF means raw ends
// mid-record (a torn tail when raw is the end of the active segment);
// ErrCorrupt means the frame is whole but its checksum disagrees.
func parseRecord(raw []byte) (kind byte, key string, val []byte, n int64, err error) {
	if len(raw) < recHeaderLen {
		return 0, "", nil, 0, io.ErrUnexpectedEOF
	}
	kind = raw[4]
	klen := binary.BigEndian.Uint32(raw[5:9])
	vlen := binary.BigEndian.Uint32(raw[9:13])
	n = recordLen(int(klen), int(vlen))
	if int64(len(raw)) < n {
		return 0, "", nil, 0, io.ErrUnexpectedEOF
	}
	if crc32.ChecksumIEEE(raw[4:n]) != binary.BigEndian.Uint32(raw[0:4]) {
		return 0, "", nil, 0, ErrCorrupt
	}
	if kind != recPut && kind != recDelete {
		return 0, "", nil, 0, fmt.Errorf("%w: unknown record kind %d", ErrCorrupt, kind)
	}
	key = string(raw[recHeaderLen : recHeaderLen+int64(klen)])
	val = raw[recHeaderLen+int64(klen) : n]
	return kind, key, val, n, nil
}

// readManifest parses the manifest and returns the live segment file
// names in replay order. ok is false when no manifest exists (a fresh
// directory).
func readManifest(dir string) (names []string, ok bool, err error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("wal manifest: %w", err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) == 0 || lines[0] != manifestMagic {
		return nil, false, fmt.Errorf("%w: wal manifest has bad magic", ErrCorrupt)
	}
	return lines[1:], true, nil
}

// writeManifest atomically replaces the manifest with the given segment
// list: temp file, fsync, rename, directory fsync. A crash leaves either
// the old or the new manifest — never a torn one.
func writeManifest(dir string, names []string) error {
	tmp, err := os.CreateTemp(dir, "manifest-*.tmp")
	if err != nil {
		return fmt.Errorf("wal manifest: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("wal manifest: %w", err)
	}
	if _, err := tmp.WriteString(manifestMagic + "\n" + strings.Join(names, "\n") + "\n"); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal manifest: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, manifestName)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal manifest: %w", err)
	}
	return syncPath(dir)
}

// syncPath fsyncs a directory, making renames/creates/unlinks in it
// durable against power loss.
func syncPath(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// replayResult is what scanning one segment contributes to recovery.
type replayFn func(kind byte, key string, off, recLen int64)

// replaySegment streams a segment, calling emit for every whole, valid
// record. For the active (last) segment a torn tail — an incomplete or
// checksum-failing record at the end — is truncated away and replay
// succeeds with the surviving prefix; for a sealed segment the same
// condition is corruption and fails the open, because sealed segments
// were fully fsynced before the manifest ever named a successor.
func replaySegment(seg *segment, active bool, emit replayFn) error {
	info, err := seg.f.Stat()
	if err != nil {
		return fmt.Errorf("wal %s: %w", seg.name, err)
	}
	size := info.Size()
	r := bufio.NewReaderSize(io.NewSectionReader(seg.f, 0, size), 1<<20)
	var off int64
	hdr := make([]byte, recHeaderLen)
	body := make([]byte, 0, 4096)
	truncate := func(cause error) error {
		if !active {
			return fmt.Errorf("%w: wal %s: invalid record at offset %d (%v)",
				ErrCorrupt, seg.name, off, cause)
		}
		if err := seg.f.Truncate(off); err != nil {
			return fmt.Errorf("wal %s: truncate torn tail: %w", seg.name, err)
		}
		if err := seg.f.Sync(); err != nil {
			return fmt.Errorf("wal %s: truncate torn tail: %w", seg.name, err)
		}
		seg.size = off
		return nil
	}
	for off < size {
		if _, err := io.ReadFull(r, hdr); err != nil {
			return truncate(io.ErrUnexpectedEOF)
		}
		klen := binary.BigEndian.Uint32(hdr[5:9])
		vlen := binary.BigEndian.Uint32(hdr[9:13])
		n := recordLen(int(klen), int(vlen))
		if off+n > size {
			return truncate(io.ErrUnexpectedEOF)
		}
		if int64(cap(body)) < n {
			body = make([]byte, 0, n)
		}
		body = append(body[:0], hdr...)
		body = body[:n]
		if _, err := io.ReadFull(r, body[recHeaderLen:]); err != nil {
			return truncate(io.ErrUnexpectedEOF)
		}
		kind, key, _, _, err := parseRecord(body)
		if err != nil {
			return truncate(err)
		}
		emit(kind, key, off, n)
		off += n
	}
	seg.size = off
	return nil
}
