package persist

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/naming"
	"repro/internal/security"
	"repro/internal/value"
)

var gen = naming.NewGenerator("persist-test")

func openPolicy() *security.Policy {
	p := security.NewPolicy()
	p.SetDefault(security.Untrusted, security.Allow)
	return p
}

func persistentObject(t *testing.T) *core.Object {
	t.Helper()
	b := core.NewBuilder(gen, "Durable", core.WithPolicy(openPolicy()))
	b.ExtData("state", value.NewMap(map[string]value.Value{"visits": value.NewInt(0)}))
	b.FixedScriptMethod("visit", `fn() {
		let s = self.state;
		s["visits"] = s["visits"] + 1;
		self.state = s;
		return s["visits"];
	}`)
	return b.MustBuild()
}

func testStores(t *testing.T) map[string]Store {
	t.Helper()
	fs, err := NewFileStore(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	ws, err := NewWALStore(filepath.Join(t.TempDir(), "wal"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ws.Close() })
	return map[string]Store{"mem": NewMemStore(), "file": fs, "wal": ws}
}

func TestStoreBasics(t *testing.T) {
	for name, store := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := store.Get("missing"); !errors.Is(err, ErrNoSlot) {
				t.Errorf("missing slot: %v", err)
			}
			if err := store.Put("a", []byte("one")); err != nil {
				t.Fatal(err)
			}
			if err := store.Put("b/with strange? chars", []byte{0, 1, 2}); err != nil {
				t.Fatal(err)
			}
			got, err := store.Get("a")
			if err != nil || string(got) != "one" {
				t.Errorf("Get(a) = %q, %v", got, err)
			}
			// Overwrite is atomic replacement.
			if err := store.Put("a", []byte("two")); err != nil {
				t.Fatal(err)
			}
			got, _ = store.Get("a")
			if string(got) != "two" {
				t.Errorf("overwrite = %q", got)
			}
			slots, err := store.List()
			if err != nil || len(slots) != 2 {
				t.Errorf("List = %v, %v", slots, err)
			}
			if err := store.Delete("a"); err != nil {
				t.Fatal(err)
			}
			if err := store.Delete("a"); err != nil {
				t.Errorf("double delete: %v", err)
			}
			if _, err := store.Get("a"); !errors.Is(err, ErrNoSlot) {
				t.Errorf("deleted slot: %v", err)
			}
			// Stored data is isolated from caller mutations.
			buf := []byte("mutable")
			if err := store.Put("c", buf); err != nil {
				t.Fatal(err)
			}
			buf[0] = 'X'
			got, _ = store.Get("c")
			if string(got) != "mutable" {
				t.Errorf("store aliased caller buffer: %q", got)
			}
		})
	}
}

func TestFileStoreDetectsCorruption(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Put("obj", []byte("precious state")); err != nil {
		t.Fatal(err)
	}
	// Flip a content byte behind the store's back.
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatal(err, entries)
	}
	path := filepath.Join(dir, entries[0].Name())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Get("obj"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupted slot: %v", err)
	}
	// Truncated header.
	if err := os.WriteFile(path, raw[:4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Get("obj"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("short slot: %v", err)
	}
	// Foreign files in the directory are ignored by List.
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "zz.slot"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	slots, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range slots {
		if s != "obj" {
			t.Errorf("foreign slot listed: %q", s)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for name, store := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			obj := persistentObject(t)
			// Accumulate state, then persist.
			for i := 0; i < 3; i++ {
				if _, err := obj.InvokeSelf("visit"); err != nil {
					t.Fatal(err)
				}
			}
			if err := SaveObject(store, obj); err != nil {
				t.Fatal(err)
			}
			// Bootstrap into a fresh object ("read itself into memory").
			re, err := LoadObject(store, obj.ID().String(), nil, core.HostPolicy(openPolicy()))
			if err != nil {
				t.Fatal(err)
			}
			if re.ID() != obj.ID() {
				t.Error("identity changed across persistence")
			}
			v, err := re.InvokeSelf("visit")
			if err != nil {
				t.Fatal(err)
			}
			if i, _ := v.Int(); i != 4 {
				t.Errorf("visits after restart = %v, want 4", v)
			}
			// Delete removes the slot.
			if err := DeleteObject(store, obj.ID()); err != nil {
				t.Fatal(err)
			}
			if _, err := LoadObject(store, obj.ID().String(), nil); !errors.Is(err, ErrNoSlot) {
				t.Errorf("load after delete: %v", err)
			}
		})
	}
}

func TestBootstrapAll(t *testing.T) {
	store := NewMemStore()
	var ids []naming.ID
	for i := 0; i < 3; i++ {
		obj := persistentObject(t)
		ids = append(ids, obj.ID())
		if err := SaveObject(store, obj); err != nil {
			t.Fatal(err)
		}
	}
	// One corrupt slot must not block the rest.
	if err := store.Put("junk", []byte("not an image")); err != nil {
		t.Fatal(err)
	}
	var failed []string
	objs, err := Bootstrap(store, nil, func(slot string, err error) {
		failed = append(failed, slot)
	}, core.HostPolicy(openPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 3 {
		t.Errorf("bootstrapped %d objects, want 3", len(objs))
	}
	if len(failed) != 1 || failed[0] != "junk" {
		t.Errorf("failed slots = %v", failed)
	}
	got := map[naming.ID]bool{}
	for _, o := range objs {
		got[o.ID()] = true
	}
	for _, id := range ids {
		if !got[id] {
			t.Errorf("object %s not bootstrapped", id)
		}
	}
	// nil onErr skips silently.
	objs2, err := Bootstrap(store, nil, nil, core.HostPolicy(openPolicy()))
	if err != nil || len(objs2) != 3 {
		t.Errorf("silent bootstrap: %d, %v", len(objs2), err)
	}
}

func TestConcurrentStoreAccess(t *testing.T) {
	for name, store := range testStores(t) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					slot := string(rune('a' + w))
					for i := 0; i < 20; i++ {
						if err := store.Put(slot, []byte{byte(i)}); err != nil {
							t.Errorf("Put: %v", err)
							return
						}
						if _, err := store.Get(slot); err != nil {
							t.Errorf("Get: %v", err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}
