package persist

import (
	"path/filepath"
	"testing"
)

func benchPayload() []byte {
	return make([]byte, 4096)
}

func BenchmarkMemStorePutGet(b *testing.B) {
	s := NewMemStore()
	data := benchPayload()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put("slot", data); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Get("slot"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFileStorePut(b *testing.B) {
	s, err := NewFileStore(filepath.Join(b.TempDir(), "store"))
	if err != nil {
		b.Fatal(err)
	}
	data := benchPayload()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put("slot", data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFileStoreGet(b *testing.B) {
	s, err := NewFileStore(filepath.Join(b.TempDir(), "store"))
	if err != nil {
		b.Fatal(err)
	}
	data := benchPayload()
	if err := s.Put("slot", data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get("slot"); err != nil {
			b.Fatal(err)
		}
	}
}
