package persist

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// The Backend conformance suite: one behavioral contract, run verbatim
// against every implementation (the multi-provider pattern — Mem, File
// and WAL stay interchangeable because the same suite pins them all).
// Implementation-specific behavior (group commit internals, torn-tail
// recovery, compaction) lives in the per-implementation test files.

// backendFactory opens a backend implementation over a directory, and
// reopens it over the same directory to check durability. In-memory
// backends set durable=false and skip the reopen legs.
type backendFactory struct {
	name    string
	durable bool
	open    func(t *testing.T, dir string) Backend
}

func backendFactories() []backendFactory {
	return []backendFactory{
		{name: "mem", durable: false, open: func(t *testing.T, dir string) Backend {
			return NewMemStore()
		}},
		{name: "file", durable: true, open: func(t *testing.T, dir string) Backend {
			s, err := NewFileStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{name: "wal", durable: true, open: func(t *testing.T, dir string) Backend {
			// Small segments so the suite also crosses roll boundaries.
			s, err := OpenWALStore(dir, WALOptions{SegmentBytes: 8 << 10})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
	}
}

func TestBackendConformance(t *testing.T) {
	for _, f := range backendFactories() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			t.Run("Basics", func(t *testing.T) { conformBasics(t, f) })
			t.Run("BinaryNamesAndValues", func(t *testing.T) { conformBinary(t, f) })
			t.Run("PutAll", func(t *testing.T) { conformPutAll(t, f) })
			t.Run("SyncAndClose", func(t *testing.T) { conformSyncClose(t, f) })
			t.Run("ConcurrentWriters", func(t *testing.T) { conformConcurrent(t, f) })
			if f.durable {
				t.Run("ReopenDurability", func(t *testing.T) { conformReopen(t, f) })
			}
		})
	}
}

func conformBasics(t *testing.T, f backendFactory) {
	s := f.open(t, t.TempDir())
	defer s.Close()
	if _, err := s.Get("missing"); !errors.Is(err, ErrNoSlot) {
		t.Errorf("missing slot: %v", err)
	}
	if err := s.Put("a", []byte("one")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("a")
	if err != nil || string(got) != "one" {
		t.Errorf("Get(a) = %q, %v", got, err)
	}
	// Overwrite replaces.
	if err := s.Put("a", []byte("two")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get("a"); string(got) != "two" {
		t.Errorf("overwrite = %q", got)
	}
	// List is sorted and complete.
	if err := s.Put("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	slots, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(slots) || len(slots) != 2 {
		t.Errorf("List = %v", slots)
	}
	// Delete is idempotent and removes the slot.
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("a"); err != nil {
		t.Errorf("double delete: %v", err)
	}
	if _, err := s.Get("a"); !errors.Is(err, ErrNoSlot) {
		t.Errorf("deleted slot: %v", err)
	}
	// The store never aliases the caller's buffer.
	buf := []byte("mutable")
	if err := s.Put("c", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	if got, _ := s.Get("c"); string(got) != "mutable" {
		t.Errorf("store aliased caller buffer: %q", got)
	}
	// Empty values round-trip as empty, not as missing.
	if err := s.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get("empty"); err != nil || len(got) != 0 {
		t.Errorf("empty value = %q, %v", got, err)
	}
}

func conformBinary(t *testing.T, f backendFactory) {
	s := f.open(t, t.TempDir())
	defer s.Close()
	names := []string{
		"b/with strange? chars", "dots..", "\x00binary\xff", "sp ace", "ünïcødé",
	}
	for i, n := range names {
		val := bytes.Repeat([]byte{byte(i), 0xFF, 0x00}, 100+i)
		if err := s.Put(n, val); err != nil {
			t.Fatalf("Put(%q): %v", n, err)
		}
	}
	slots, err := s.List()
	if err != nil || len(slots) != len(names) {
		t.Fatalf("List = %v, %v", slots, err)
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	for i := range sorted {
		if slots[i] != sorted[i] {
			t.Errorf("List[%d] = %q, want %q", i, slots[i], sorted[i])
		}
	}
	for i, n := range names {
		got, err := s.Get(n)
		if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{byte(i), 0xFF, 0x00}, 100+i)) {
			t.Errorf("Get(%q) mismatch: %v", n, err)
		}
	}
}

func conformPutAll(t *testing.T, f backendFactory) {
	s := f.open(t, t.TempDir())
	defer s.Close()
	if err := s.PutAll(nil); err != nil {
		t.Errorf("empty PutAll: %v", err)
	}
	batch := make(map[string][]byte, 100)
	for i := 0; i < 100; i++ {
		batch[fmt.Sprintf("slot-%03d", i)] = []byte(fmt.Sprintf("value-%d", i))
	}
	if err := s.PutAll(batch); err != nil {
		t.Fatal(err)
	}
	slots, err := s.List()
	if err != nil || len(slots) != 100 {
		t.Fatalf("after PutAll: %d slots, %v", len(slots), err)
	}
	for k, want := range batch {
		got, err := s.Get(k)
		if err != nil || !bytes.Equal(got, want) {
			t.Errorf("Get(%q) = %q, %v", k, got, err)
		}
	}
	// PutAll overwrites like Put does.
	if err := s.PutAll(map[string][]byte{"slot-000": []byte("rewritten")}); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get("slot-000"); string(got) != "rewritten" {
		t.Errorf("PutAll overwrite = %q", got)
	}
}

func conformSyncClose(t *testing.T, f backendFactory) {
	s := f.open(t, t.TempDir())
	if err := s.Sync(); err != nil {
		t.Errorf("Sync on empty store: %v", err)
	}
	if err := s.Put("a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Errorf("Sync: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func conformConcurrent(t *testing.T, f backendFactory) {
	s := f.open(t, t.TempDir())
	defer s.Close()
	const writers, ops = 8, 25
	var wg sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(wr)))
			own := fmt.Sprintf("own-%d", wr)
			for i := 0; i < ops; i++ {
				if err := s.Put(own, []byte{byte(i)}); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if got, err := s.Get(own); err != nil || got[0] != byte(i) {
					t.Errorf("read-own-write: %q, %v", got, err)
					return
				}
				// Shared-slot churn: outcome is any writer's value, never
				// an error or a torn read.
				shared := fmt.Sprintf("shared-%d", rng.Intn(4))
				if err := s.Put(shared, bytes.Repeat([]byte{byte(wr)}, 64)); err != nil {
					t.Errorf("Put shared: %v", err)
					return
				}
				if got, err := s.Get(shared); err != nil {
					t.Errorf("Get shared: %v", err)
					return
				} else if len(got) != 64 || bytes.Count(got, got[:1]) != 64 {
					t.Errorf("torn shared read: %v", got)
					return
				}
				if _, err := s.List(); err != nil {
					t.Errorf("List: %v", err)
					return
				}
			}
		}(wr)
	}
	wg.Wait()
}

func conformReopen(t *testing.T, f backendFactory) {
	dir := t.TempDir()
	s := f.open(t, dir)
	if err := s.Put("keep", []byte("kept")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("gone", []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("keep2", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("keep2", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	if err := s.PutAll(map[string][]byte{"b1": []byte("b1v"), "b2": []byte("b2v")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := f.open(t, dir)
	defer re.Close()
	slots, err := re.List()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"b1", "b2", "keep", "keep2"}
	if len(slots) != len(want) {
		t.Fatalf("reopened List = %v, want %v", slots, want)
	}
	for i := range want {
		if slots[i] != want[i] {
			t.Fatalf("reopened List = %v, want %v", slots, want)
		}
	}
	for slot, val := range map[string]string{
		"keep": "kept", "keep2": "v2", "b1": "b1v", "b2": "b2v",
	} {
		if got, err := re.Get(slot); err != nil || string(got) != val {
			t.Errorf("reopened Get(%q) = %q, %v; want %q", slot, got, err, val)
		}
	}
	if _, err := re.Get("gone"); !errors.Is(err, ErrNoSlot) {
		t.Errorf("deleted slot survived reopen: %v", err)
	}
	// Writes keep working after recovery.
	if err := re.Put("post", []byte("recovery")); err != nil {
		t.Fatal(err)
	}
	if got, _ := re.Get("post"); string(got) != "recovery" {
		t.Errorf("post-recovery write = %q", got)
	}
}
