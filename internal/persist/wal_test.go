package persist

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// copyDir clones a WAL directory so a truncation/corruption scenario can
// be replayed without disturbing the original.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// lastSegment returns the path of the manifest's last (active) segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	names, ok, err := readManifest(dir)
	if err != nil || !ok || len(names) == 0 {
		t.Fatalf("manifest: %v ok=%v names=%v", err, ok, names)
	}
	return filepath.Join(dir, names[len(names)-1])
}

// TestWALTornTailEveryByte is the truncation property test: any prefix
// truncation inside the final record — a torn write at every byte
// boundary — must recover every earlier record exactly, surface zero
// corrupt reads, and leave the store writable.
func TestWALTornTailEveryByte(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWALStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential Puts: one batch each, so the on-disk order is the call
	// order and every offset is the running sum of record lengths.
	want := make(map[string][]byte)
	var keys []string
	var size int64
	put := func(key string, val []byte) {
		t.Helper()
		if err := w.Put(key, val); err != nil {
			t.Fatal(err)
		}
		want[key] = val
		keys = append(keys, key)
		size += recordLen(len(key), len(val))
	}
	for i := 0; i < 12; i++ {
		put(fmt.Sprintf("slot-%02d", i), bytes.Repeat([]byte{byte(i)}, 5+7*i))
	}
	// The final record overwrites an earlier slot, so a torn tail must
	// resurface the OLD value — not lose the slot, not serve the new one.
	oldVal := append([]byte(nil), want["slot-05"]...)
	lastKey, lastVal := "slot-05", []byte("the final, possibly torn, overwrite")
	put(lastKey, lastVal)
	lastLen := recordLen(len(lastKey), len(lastVal))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	if info, err := os.Stat(seg); err != nil || info.Size() != size {
		t.Fatalf("segment size = %v (%v), computed %d — offset math is off", info.Size(), err, size)
	}

	lastStart := size - lastLen
	for cut := lastStart; cut <= size; cut++ {
		cutDir := copyDir(t, dir)
		if err := os.Truncate(lastSegment(t, cutDir), cut); err != nil {
			t.Fatal(err)
		}
		re, err := OpenWALStore(cutDir, WALOptions{})
		if err != nil {
			t.Fatalf("cut=%d: recovery failed: %v", cut, err)
		}
		tornLast := cut < size
		for _, k := range keys[:len(keys)-1] {
			wantVal := want[k]
			if k == lastKey && tornLast {
				wantVal = oldVal
			}
			got, err := re.Get(k)
			if err != nil {
				t.Fatalf("cut=%d: Get(%q): %v", cut, k, err)
			}
			if !bytes.Equal(got, wantVal) {
				t.Fatalf("cut=%d: Get(%q) = %d bytes, want %d", cut, k, len(got), len(wantVal))
			}
		}
		if !tornLast {
			if got, err := re.Get(lastKey); err != nil || !bytes.Equal(got, lastVal) {
				t.Fatalf("cut=%d (whole): Get(%q) = %v, %v", cut, lastKey, got, err)
			}
		}
		// The truncated store accepts appends again.
		if err := re.Put("post-recovery", []byte("ok")); err != nil {
			t.Fatalf("cut=%d: post-recovery put: %v", cut, err)
		}
		if err := re.Close(); err != nil {
			t.Fatalf("cut=%d: close: %v", cut, err)
		}
	}
}

// TestWALCorruptSealedSegmentFailsOpen: a checksum flip in a sealed
// (non-final) segment is real corruption, not a torn tail — recovery must
// refuse rather than silently truncate fsynced history.
func TestWALCorruptSealedSegment(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWALStore(dir, WALOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := w.Put(fmt.Sprintf("k%02d", i), bytes.Repeat([]byte{byte(i)}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Stats().Segments < 3 {
		t.Fatalf("want ≥3 segments, got %d", w.Stats().Segments)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	names, _, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	first := filepath.Join(dir, names[0])
	raw, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(first, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWALStore(dir, WALOptions{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over corrupt sealed segment: %v, want ErrCorrupt", err)
	}
}

// TestWALGroupCommitConcurrency: many writers on distinct keys, all
// acknowledged writes durable across reopen, no lost or torn records.
func TestWALGroupCommitConcurrency(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWALStore(dir, WALOptions{SegmentBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	const writers, ops = 8, 50
	var wg sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("w%d-op%02d", wr, i)
				if err := w.Put(key, []byte(key)); err != nil {
					t.Errorf("Put(%q): %v", key, err)
					return
				}
			}
		}(wr)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := NewWALStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	slots, err := re.List()
	if err != nil || len(slots) != writers*ops {
		t.Fatalf("recovered %d slots (%v), want %d", len(slots), err, writers*ops)
	}
	for _, k := range slots {
		if got, err := re.Get(k); err != nil || string(got) != k {
			t.Fatalf("Get(%q) = %q, %v", k, got, err)
		}
	}
}

// TestWALCompaction: overwrite churn grows garbage; Compact shrinks the
// log to ~live size, preserves every visible value (including across
// reopen), and retires the input segments from the directory.
func TestWALCompaction(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWALStore(dir, WALOptions{SegmentBytes: 4 << 10, DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{0xAB}, 256)
	for round := 0; round < 20; round++ {
		for i := 0; i < 8; i++ {
			if err := w.Put(fmt.Sprintf("hot-%d", i), val); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Put("cold", []byte("survives")); err != nil {
		t.Fatal(err)
	}
	if err := w.Delete("hot-7"); err != nil {
		t.Fatal(err)
	}
	before := w.Stats()
	if before.GarbageBytes == 0 || before.Segments < 2 {
		t.Fatalf("churn produced no garbage to compact: %+v", before)
	}
	if err := w.Compact(); err != nil {
		t.Fatal(err)
	}
	after := w.Stats()
	if after.TotalBytes >= before.TotalBytes || after.GarbageBytes >= before.GarbageBytes {
		t.Errorf("compaction did not shrink the log: before %+v after %+v", before, after)
	}
	check := func(s Backend, label string) {
		t.Helper()
		for i := 0; i < 7; i++ {
			if got, err := s.Get(fmt.Sprintf("hot-%d", i)); err != nil || !bytes.Equal(got, val) {
				t.Fatalf("%s: Get(hot-%d): %v", label, i, err)
			}
		}
		if _, err := s.Get("hot-7"); !errors.Is(err, ErrNoSlot) {
			t.Fatalf("%s: deleted slot resurrected: %v", label, err)
		}
		if got, err := s.Get("cold"); err != nil || string(got) != "survives" {
			t.Fatalf("%s: Get(cold) = %q, %v", label, got, err)
		}
	}
	check(w, "compacted")
	// Writes after compaction land in the surviving active segment.
	if err := w.Put("post", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Retired segment files are really gone from the directory.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segsOnDisk := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), segPrefix) {
			segsOnDisk++
		}
	}
	if segsOnDisk != after.Segments+1 { // +1: the roll for "post" — no: post rode the active; recount below
		// Count from the manifest instead of guessing roll behavior.
		names, _, err := readManifest(dir)
		if err != nil {
			t.Fatal(err)
		}
		if segsOnDisk != len(names) {
			t.Errorf("%d segment files on disk, manifest names %d", segsOnDisk, len(names))
		}
	}
	re, err := NewWALStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	check(re, "reopened")
	if got, err := re.Get("post"); err != nil || string(got) != "x" {
		t.Fatalf("post-compaction write lost: %v, %v", got, err)
	}
}

// TestWALAutoCompactTrigger: with a tiny floor, overwrite churn trips the
// background trigger and the log converges to ~live size on its own.
func TestWALAutoCompactTrigger(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWALStore(dir, WALOptions{
		SegmentBytes: 2 << 10, MinCompactBytes: 8 << 10, GarbageRatio: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	val := bytes.Repeat([]byte{1}, 128)
	for i := 0; i < 400; i++ {
		if err := w.Put(fmt.Sprintf("k%d", i%4), val); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := w.Stats()
		if st.CompactErr != nil {
			t.Fatal(st.CompactErr)
		}
		if !st.Compacting && st.TotalBytes < 8<<10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto compaction never converged: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 0; i < 4; i++ {
		if got, err := w.Get(fmt.Sprintf("k%d", i)); err != nil || !bytes.Equal(got, val) {
			t.Fatalf("Get(k%d) after auto compaction: %v", i, err)
		}
	}
}

// TestWALCompactionUnderConcurrentWrites: a writer churns while Compact
// runs; the swap must not resurrect overwritten values or drop fresh
// ones.
func TestWALCompactionUnderConcurrentWrites(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWALStore(dir, WALOptions{SegmentBytes: 2 << 10, DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 64; i++ {
		if err := w.Put(fmt.Sprintf("k%d", i%8), bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	var lastGen [8]int
	go func() {
		defer wg.Done()
		gen := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			gen++
			k := gen % 8
			if err := w.Put(fmt.Sprintf("k%d", k), []byte(fmt.Sprintf("gen-%d", gen))); err != nil {
				t.Errorf("churn put: %v", err)
				return
			}
			lastGen[k] = gen
		}
	}()
	for i := 0; i < 5; i++ {
		if err := w.Compact(); err != nil {
			t.Fatalf("compact %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	for k := 0; k < 8; k++ {
		got, err := w.Get(fmt.Sprintf("k%d", k))
		if err != nil {
			t.Fatalf("Get(k%d): %v", k, err)
		}
		if lastGen[k] > 0 && string(got) != fmt.Sprintf("gen-%d", lastGen[k]) {
			t.Errorf("k%d = %q, want gen-%d", k, got, lastGen[k])
		}
	}
}

// TestWALSweepsCrashedCompaction: segment files the manifest does not
// name (a crashed compaction's half-written output) and stray manifest
// temp files are removed at open and never shadow live data.
func TestWALSweepsCrashedCompaction(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWALStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Put("real", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(dir, segName(99))
	if err := os.WriteFile(stray, []byte("half-written compaction output"), 0o644); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, "manifest-123.tmp")
	if err := os.WriteFile(tmp, []byte("torn manifest"), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := NewWALStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got, err := re.Get("real"); err != nil || string(got) != "data" {
		t.Fatalf("Get(real) = %q, %v", got, err)
	}
	for _, p := range []string{stray, tmp} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("stray %s survived open: %v", p, err)
		}
	}
}

// TestWALClosedOps: a closed store refuses mutations with ErrClosed.
func TestWALClosedOps(t *testing.T) {
	w, err := NewWALStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Put("a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Put("b", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after Close: %v", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrClosed) {
		t.Errorf("Sync after Close: %v", err)
	}
	if err := w.Compact(); !errors.Is(err, ErrClosed) {
		t.Errorf("Compact after Close: %v", err)
	}
}

// TestFileStoreSweepsOrphanTemps: put-* temp files left by a crash are
// swept by NewFileStore and never listed as slots.
func TestFileStoreSweepsOrphanTemps(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Put("a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, "put-1234567")
	if err := os.WriteFile(orphan, []byte("crashed mid-put"), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Errorf("orphan temp survived NewFileStore: %v", err)
	}
	if got, err := re.Get("a"); err != nil || string(got) != "x" {
		t.Errorf("Get(a) = %q, %v", got, err)
	}
	if slots, err := re.List(); err != nil || len(slots) != 1 {
		t.Errorf("List = %v, %v", slots, err)
	}
}
