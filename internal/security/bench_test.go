package security

import (
	"testing"

	"repro/internal/naming"
)

func BenchmarkACLDecideFirstEntry(b *testing.B) {
	g := naming.NewGenerator("bench")
	p := Principal{Object: g.New(), Domain: "d"}
	acl := NewACL(AllowObject(p.Object))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := acl.Decide(p, ActionInvoke); !ok {
			b.Fatal("no decision")
		}
	}
}

func BenchmarkACLDecideScan64(b *testing.B) {
	g := naming.NewGenerator("bench")
	p := Principal{Object: g.New(), Domain: "d"}
	entries := make([]Entry, 0, 65)
	for i := 0; i < 64; i++ {
		entries = append(entries, Entry{Effect: Deny, Object: g.New()})
	}
	entries = append(entries, AllowObject(p.Object))
	acl := NewACL(entries...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := acl.Decide(p, ActionInvoke); !ok {
			b.Fatal("no decision")
		}
	}
}

func BenchmarkCheckPolicyDefault(b *testing.B) {
	g := naming.NewGenerator("bench")
	p := Principal{Object: g.New(), Domain: "campus"}
	pol := NewPolicy()
	pol.GradeDomain("campus", Trusted)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Check(ACL{}, pol, p, ActionInvoke, "m"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDomainGlobMatch(b *testing.B) {
	g := naming.NewGenerator("bench")
	p := Principal{Object: g.New(), Domain: "technion.ee.labs"}
	e := Entry{Effect: Allow, Domain: "technion.*"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !e.Matches(p, ActionInvoke) {
			b.Fatal("no match")
		}
	}
}
