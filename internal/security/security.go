// Package security implements MROM's security substrate. The paper's
// position (§3.1) is that security is coupled with encapsulation: every
// data item and method carries an access control list (ACL) "that specifies
// which other objects can access it", with single-object granularity rather
// than class-level visibility categories, and checks are applied "on one
// action only — method invocation" (plus getting and setting data items,
// which the paper folds into the same legitimacy check).
//
// The model here:
//
//   - A Principal is the identity of a requester: an object ID plus the
//     trust domain it operates in.
//   - An ACL is an ordered list of allow/deny entries; the first matching
//     entry decides. An empty ACL delegates to the site Policy.
//   - A Policy assigns trust levels to domains and a default decision per
//     trust level, so hosts can say "local objects may, untrusted domains
//     may not" without enumerating objects.
//   - An Auditor records decisions for inspection (mutual security: both
//     host and mobile object can review what was attempted).
package security

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/naming"
)

// ErrDenied reports a failed security match. Callers detect it with
// errors.Is; the message names the action and item for diagnostics.
var ErrDenied = errors.New("access denied")

// Action is the operation being checked.
type Action uint8

// Actions subject to checks. ActionAny is usable only in ACL entries,
// where it matches every action.
const (
	ActionAny Action = iota
	ActionInvoke
	ActionGet
	ActionSet
	ActionMeta // reflective manipulation: add/delete/setMethod etc.
)

// String returns the action name.
func (a Action) String() string {
	switch a {
	case ActionAny:
		return "any"
	case ActionInvoke:
		return "invoke"
	case ActionGet:
		return "get"
	case ActionSet:
		return "set"
	case ActionMeta:
		return "meta"
	default:
		return fmt.Sprintf("action(%d)", uint8(a))
	}
}

// TrustLevel grades how much a domain is trusted by the local site.
type TrustLevel uint8

// Trust levels, lowest first.
const (
	Untrusted TrustLevel = iota
	Limited
	Trusted
	Local
)

// String returns the trust level name.
func (t TrustLevel) String() string {
	switch t {
	case Untrusted:
		return "untrusted"
	case Limited:
		return "limited"
	case Trusted:
		return "trusted"
	case Local:
		return "local"
	default:
		return fmt.Sprintf("trust(%d)", uint8(t))
	}
}

// Principal identifies a requester.
type Principal struct {
	Object naming.ID
	Domain string
}

// String renders "domain/objectid" for diagnostics.
func (p Principal) String() string {
	return p.Domain + "/" + p.Object.String()
}

// Effect is an ACL entry outcome.
type Effect uint8

// Effects.
const (
	Deny Effect = iota
	Allow
)

// String returns "allow" or "deny".
func (e Effect) String() string {
	if e == Allow {
		return "allow"
	}
	return "deny"
}

// Entry is one ACL rule. Zero-valued match fields are wildcards:
// a Nil Object matches any object, an empty Domain matches any domain.
// Domain supports a trailing-* glob ("technion.*"). Action matches the
// checked action or ActionAny.
type Entry struct {
	Effect Effect
	Object naming.ID
	Domain string
	Action Action
}

// Matches reports whether the entry applies to (p, action).
func (e Entry) Matches(p Principal, action Action) bool {
	if e.Action != ActionAny && e.Action != action {
		return false
	}
	if !e.Object.IsNil() && e.Object != p.Object {
		return false
	}
	if e.Domain != "" && !domainMatch(e.Domain, p.Domain) {
		return false
	}
	return true
}

func domainMatch(pattern, domain string) bool {
	if pattern == "*" {
		return true
	}
	if strings.HasSuffix(pattern, ".*") {
		prefix := strings.TrimSuffix(pattern, "*")
		return strings.HasPrefix(domain, prefix) || domain == strings.TrimSuffix(prefix, ".")
	}
	return pattern == domain
}

// ACL is an ordered access-control list attached to an item. The zero ACL
// is empty and delegates every decision to the policy.
type ACL struct {
	entries []Entry
}

// NewACL builds an ACL from entries, copying the slice.
func NewACL(entries ...Entry) ACL {
	out := make([]Entry, len(entries))
	copy(out, entries)
	return ACL{entries: out}
}

// AllowObject is a convenience constructor: allow one object, any action.
func AllowObject(id naming.ID) Entry {
	return Entry{Effect: Allow, Object: id}
}

// AllowDomain is a convenience constructor: allow a domain pattern, any action.
func AllowDomain(pattern string) Entry {
	return Entry{Effect: Allow, Domain: pattern}
}

// DenyObject is a convenience constructor: deny one object, any action.
func DenyObject(id naming.ID) Entry {
	return Entry{Effect: Deny, Object: id}
}

// DenyAll matches everything; use as a final default entry.
func DenyAll() Entry { return Entry{Effect: Deny} }

// AllowAll matches everything; use as a final default entry.
func AllowAll() Entry { return Entry{Effect: Allow} }

// Empty reports whether the ACL has no entries.
func (a ACL) Empty() bool { return len(a.entries) == 0 }

// Len reports the number of entries.
func (a ACL) Len() int { return len(a.entries) }

// Entries returns a copy of the rule list.
func (a ACL) Entries() []Entry {
	out := make([]Entry, len(a.entries))
	copy(out, a.entries)
	return out
}

// Append returns a new ACL with e added at the end.
func (a ACL) Append(e Entry) ACL {
	out := make([]Entry, 0, len(a.entries)+1)
	out = append(out, a.entries...)
	out = append(out, e)
	return ACL{entries: out}
}

// Prepend returns a new ACL with e inserted at the front (highest priority).
func (a ACL) Prepend(e Entry) ACL {
	out := make([]Entry, 0, len(a.entries)+1)
	out = append(out, e)
	out = append(out, a.entries...)
	return ACL{entries: out}
}

// Decide evaluates the ACL for (p, action). The first matching entry wins.
// ok is false when no entry matches, in which case the caller consults the
// policy.
func (a ACL) Decide(p Principal, action Action) (effect Effect, ok bool) {
	for _, e := range a.entries {
		if e.Matches(p, action) {
			return e.Effect, true
		}
	}
	return Deny, false
}

// Policy maps trust domains to levels and levels to default decisions.
// The zero value is unusable; construct with NewPolicy. Policies are safe
// for concurrent use.
type Policy struct {
	mu       sync.RWMutex
	gen      atomic.Uint64
	levels   map[string]TrustLevel
	defaults map[TrustLevel]Effect
	fallback TrustLevel
}

// NewPolicy returns a policy with the conventional defaults: Local and
// Trusted domains allowed, Limited and Untrusted denied; unknown domains
// graded Untrusted.
func NewPolicy() *Policy {
	return &Policy{
		levels: make(map[string]TrustLevel),
		defaults: map[TrustLevel]Effect{
			Local:     Allow,
			Trusted:   Allow,
			Limited:   Deny,
			Untrusted: Deny,
		},
		fallback: Untrusted,
	}
}

// GradeDomain assigns a trust level to a domain name.
func (p *Policy) GradeDomain(domain string, level TrustLevel) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.levels[domain] = level
	p.gen.Add(1)
}

// SetDefault sets the decision for a trust level when no ACL entry matched.
func (p *Policy) SetDefault(level TrustLevel, effect Effect) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.defaults[level] = effect
	p.gen.Add(1)
}

// Generation returns the policy's mutation counter. Every GradeDomain or
// SetDefault advances it (inside the policy lock, after the mutation is
// applied), so a decision cache that captured the generation before
// computing a decision can detect that the decision may be stale: if the
// generation still matches at use time, the decision was computed against
// the current policy.
func (p *Policy) Generation() uint64 { return p.gen.Load() }

// Level returns the trust level of a domain (fallback for unknown domains).
func (p *Policy) Level(domain string) TrustLevel {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if l, ok := p.levels[domain]; ok {
		return l
	}
	return p.fallback
}

// DecideDefault returns the policy decision for a principal with no
// matching ACL entry.
func (p *Policy) DecideDefault(pr Principal) Effect {
	level := p.Level(pr.Domain)
	p.mu.RLock()
	defer p.mu.RUnlock()
	if e, ok := p.defaults[level]; ok {
		return e
	}
	return Deny
}

// Check is the full decision procedure used by level-0 invocation's Match
// phase: ACL first (ordered, first match wins), then the policy default.
// It returns nil on allow and an ErrDenied-wrapped error on deny.
func Check(acl ACL, policy *Policy, pr Principal, action Action, item string) error {
	err, _ := Decide(acl, policy, pr, action, item)
	return err
}

// Decide is Check, additionally reporting whether the decision fell through
// to the policy default rather than being settled by an ACL entry. Decision
// caches need the distinction: an ACL-settled entry is invalidated by ACL
// edits alone, while a policy-settled entry is also invalidated when the
// policy's Generation advances.
func Decide(acl ACL, policy *Policy, pr Principal, action Action, item string) (err error, viaPolicy bool) {
	if effect, ok := acl.Decide(pr, action); ok {
		if effect == Allow {
			return nil, false
		}
		return fmt.Errorf("%w: %s of %q by %s (acl)", ErrDenied, action, item, pr), false
	}
	if policy != nil && policy.DecideDefault(pr) == Allow {
		return nil, true
	}
	return fmt.Errorf("%w: %s of %q by %s (policy)", ErrDenied, action, item, pr), true
}

// Event is one audited decision.
type Event struct {
	At        time.Time
	Principal Principal
	Action    Action
	Item      string
	Allowed   bool
}

// Auditor records recent decisions in a bounded ring. The zero value is
// unusable; construct with NewAuditor.
type Auditor struct {
	mu     sync.Mutex
	ring   []Event
	next   int
	filled bool
	now    func() time.Time
}

// NewAuditor returns an auditor retaining the last capacity events.
func NewAuditor(capacity int) *Auditor {
	if capacity <= 0 {
		capacity = 128
	}
	return &Auditor{ring: make([]Event, capacity), now: time.Now}
}

// Record appends a decision event.
func (a *Auditor) Record(pr Principal, action Action, item string, allowed bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.ring[a.next] = Event{At: a.now(), Principal: pr, Action: action, Item: item, Allowed: allowed}
	a.next++
	if a.next == len(a.ring) {
		a.next = 0
		a.filled = true
	}
}

// Events returns the retained events, oldest first.
func (a *Auditor) Events() []Event {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.filled {
		out := make([]Event, a.next)
		copy(out, a.ring[:a.next])
		return out
	}
	out := make([]Event, 0, len(a.ring))
	out = append(out, a.ring[a.next:]...)
	out = append(out, a.ring[:a.next]...)
	return out
}

// Denials returns only the denied events, oldest first.
func (a *Auditor) Denials() []Event {
	all := a.Events()
	out := all[:0:0]
	for _, e := range all {
		if !e.Allowed {
			out = append(out, e)
		}
	}
	return out
}
