package security

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/naming"
)

var gen = naming.NewGenerator("sec-test")

func principal(domain string) Principal {
	return Principal{Object: gen.New(), Domain: domain}
}

func TestEntryMatches(t *testing.T) {
	alice := principal("technion.ee")
	tests := []struct {
		name   string
		entry  Entry
		p      Principal
		action Action
		want   bool
	}{
		{"wildcard matches anything", Entry{Effect: Allow}, alice, ActionInvoke, true},
		{"object match", Entry{Effect: Allow, Object: alice.Object}, alice, ActionGet, true},
		{"object mismatch", Entry{Effect: Allow, Object: gen.New()}, alice, ActionGet, false},
		{"domain exact", Entry{Effect: Allow, Domain: "technion.ee"}, alice, ActionSet, true},
		{"domain mismatch", Entry{Effect: Allow, Domain: "mit.edu"}, alice, ActionSet, false},
		{"domain glob", Entry{Effect: Allow, Domain: "technion.*"}, alice, ActionSet, true},
		{"domain glob matches parent", Entry{Effect: Allow, Domain: "technion.*"}, principal("technion"), ActionSet, true},
		{"domain glob mismatch", Entry{Effect: Allow, Domain: "mit.*"}, alice, ActionSet, false},
		{"star matches all", Entry{Effect: Allow, Domain: "*"}, alice, ActionSet, true},
		{"action match", Entry{Effect: Allow, Action: ActionInvoke}, alice, ActionInvoke, true},
		{"action mismatch", Entry{Effect: Allow, Action: ActionInvoke}, alice, ActionMeta, false},
		{"combined all match", Entry{Effect: Deny, Object: alice.Object, Domain: "technion.*", Action: ActionMeta}, alice, ActionMeta, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.entry.Matches(tt.p, tt.action); got != tt.want {
				t.Errorf("Matches = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestACLFirstMatchWins(t *testing.T) {
	alice := principal("a")
	acl := NewACL(
		DenyObject(alice.Object),
		AllowAll(),
	)
	if effect, ok := acl.Decide(alice, ActionInvoke); !ok || effect != Deny {
		t.Errorf("Decide(alice) = %v, %v; want Deny, true", effect, ok)
	}
	bob := principal("a")
	if effect, ok := acl.Decide(bob, ActionInvoke); !ok || effect != Allow {
		t.Errorf("Decide(bob) = %v, %v; want Allow, true", effect, ok)
	}
}

func TestACLNoMatchDelegates(t *testing.T) {
	acl := NewACL(Entry{Effect: Allow, Domain: "x"})
	if _, ok := acl.Decide(principal("y"), ActionInvoke); ok {
		t.Error("unmatched principal decided by ACL")
	}
	if !NewACL().Empty() {
		t.Error("empty ACL not Empty")
	}
}

func TestACLImmutability(t *testing.T) {
	base := NewACL(AllowAll())
	appended := base.Append(DenyAll())
	prepended := base.Prepend(DenyAll())
	if base.Len() != 1 || appended.Len() != 2 || prepended.Len() != 2 {
		t.Fatalf("lens: %d %d %d", base.Len(), appended.Len(), prepended.Len())
	}
	p := principal("d")
	if e, _ := appended.Decide(p, ActionGet); e != Allow {
		t.Error("Append changed priority order")
	}
	if e, _ := prepended.Decide(p, ActionGet); e != Deny {
		t.Error("Prepend not highest priority")
	}
	// Entries returns a copy.
	ents := base.Entries()
	ents[0] = DenyAll()
	if e, _ := base.Decide(p, ActionGet); e != Deny {
		// base must still allow
	} else if e == Deny {
		t.Error("Entries exposed internal storage")
	}
}

func TestPolicyDefaults(t *testing.T) {
	pol := NewPolicy()
	pol.GradeDomain("campus", Trusted)
	pol.GradeDomain("partner", Limited)

	if lvl := pol.Level("campus"); lvl != Trusted {
		t.Errorf("Level(campus) = %v", lvl)
	}
	if lvl := pol.Level("unknown"); lvl != Untrusted {
		t.Errorf("Level(unknown) = %v", lvl)
	}
	if e := pol.DecideDefault(principal("campus")); e != Allow {
		t.Errorf("trusted default = %v", e)
	}
	if e := pol.DecideDefault(principal("partner")); e != Deny {
		t.Errorf("limited default = %v", e)
	}
	if e := pol.DecideDefault(principal("unknown")); e != Deny {
		t.Errorf("untrusted default = %v", e)
	}

	pol.SetDefault(Limited, Allow)
	if e := pol.DecideDefault(principal("partner")); e != Allow {
		t.Errorf("limited default after SetDefault = %v", e)
	}
}

func TestCheck(t *testing.T) {
	pol := NewPolicy()
	pol.GradeDomain("home", Local)
	stranger := principal("nowhere")
	friend := principal("home")

	// Empty ACL: policy decides.
	if err := Check(ACL{}, pol, friend, ActionInvoke, "m"); err != nil {
		t.Errorf("local principal denied by policy: %v", err)
	}
	if err := Check(ACL{}, pol, stranger, ActionInvoke, "m"); !errors.Is(err, ErrDenied) {
		t.Errorf("stranger allowed by policy: %v", err)
	}

	// ACL overrides policy in both directions.
	allowStranger := NewACL(AllowObject(stranger.Object))
	if err := Check(allowStranger, pol, stranger, ActionInvoke, "m"); err != nil {
		t.Errorf("ACL allow not honored: %v", err)
	}
	denyFriend := NewACL(DenyObject(friend.Object), AllowAll())
	if err := Check(denyFriend, pol, friend, ActionInvoke, "m"); !errors.Is(err, ErrDenied) {
		t.Errorf("ACL deny not honored: %v", err)
	}

	// Nil policy with empty ACL denies.
	if err := Check(ACL{}, nil, friend, ActionInvoke, "m"); !errors.Is(err, ErrDenied) {
		t.Errorf("nil policy allowed: %v", err)
	}
}

// Property: adding an AllowObject(p) entry at the front never turns a
// previously-allowed principal p into denied (prepending a grant is
// monotone for its subject).
func TestPropPrependGrantMonotone(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		p := Principal{Object: gen.New(), Domain: "d"}
		entries := make([]Entry, 0, n%8)
		for i := 0; i < int(n%8); i++ {
			e := Entry{Effect: Effect(r.Intn(2))}
			if r.Intn(2) == 0 {
				e.Object = gen.New()
			}
			if r.Intn(2) == 0 {
				e.Action = Action(r.Intn(5))
			}
			entries = append(entries, e)
		}
		acl := NewACL(entries...)
		granted := acl.Prepend(AllowObject(p.Object))
		effect, ok := granted.Decide(p, ActionInvoke)
		return ok && effect == Allow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAuditorRing(t *testing.T) {
	a := NewAuditor(4)
	p := principal("d")
	for i := 0; i < 6; i++ {
		a.Record(p, ActionInvoke, "m", i%2 == 0)
	}
	events := a.Events()
	if len(events) != 4 {
		t.Fatalf("retained %d events, want 4", len(events))
	}
	// Oldest-first: events 2..5; denials are the odd ones (3, 5).
	if len(a.Denials()) != 2 {
		t.Errorf("Denials = %d, want 2", len(a.Denials()))
	}

	small := NewAuditor(0) // capacity defaults
	small.Record(p, ActionGet, "x", true)
	if len(small.Events()) != 1 {
		t.Error("default-capacity auditor lost event")
	}
}

func TestStringers(t *testing.T) {
	if ActionInvoke.String() != "invoke" || ActionMeta.String() != "meta" ||
		ActionGet.String() != "get" || ActionSet.String() != "set" || ActionAny.String() != "any" {
		t.Error("Action.String wrong")
	}
	if Action(99).String() == "" {
		t.Error("unknown action empty")
	}
	if Local.String() != "local" || Untrusted.String() != "untrusted" ||
		Trusted.String() != "trusted" || Limited.String() != "limited" {
		t.Error("TrustLevel.String wrong")
	}
	if TrustLevel(99).String() == "" {
		t.Error("unknown trust empty")
	}
	if Allow.String() != "allow" || Deny.String() != "deny" {
		t.Error("Effect.String wrong")
	}
	p := principal("dom")
	if p.String() == "" {
		t.Error("Principal.String empty")
	}
}
