package wire

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/value"
)

// Value wire tags mirror value.Kind but are pinned independently so the
// in-memory enum can evolve without breaking the format.
const (
	tagNull   = 0
	tagFalse  = 1
	tagTrue   = 2
	tagInt    = 3
	tagFloat  = 4
	tagString = 5
	tagBytes  = 6
	tagList   = 7
	tagMap    = 8
	tagRef    = 9
	tagTime   = 10
)

// PutValue appends the encoding of v.
func PutValue(w *Writer, v value.Value) {
	switch v.Kind() {
	case value.KindNull:
		w.Byte(tagNull)
	case value.KindBool:
		b, _ := v.Bool()
		if b {
			w.Byte(tagTrue)
		} else {
			w.Byte(tagFalse)
		}
	case value.KindInt:
		i, _ := v.Int()
		w.Byte(tagInt)
		w.Varint(i)
	case value.KindFloat:
		f, _ := v.Float()
		w.Byte(tagFloat)
		w.Float(f)
	case value.KindString:
		s, _ := v.Str()
		w.Byte(tagString)
		w.String(s)
	case value.KindBytes:
		b, _ := v.Bytes()
		w.Byte(tagBytes)
		w.BytesField(b)
	case value.KindList:
		l, _ := v.List()
		w.Byte(tagList)
		w.Uvarint(uint64(len(l)))
		for _, e := range l {
			PutValue(w, e)
		}
	case value.KindMap:
		m, _ := v.Map()
		w.Byte(tagMap)
		w.Uvarint(uint64(len(m)))
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys) // deterministic encoding
		for _, k := range keys {
			w.String(k)
			PutValue(w, m[k])
		}
	case value.KindRef:
		r, _ := v.Ref()
		w.Byte(tagRef)
		w.String(r)
	case value.KindTime:
		t, _ := v.Time()
		w.Byte(tagTime)
		w.Varint(t.UnixNano())
	default:
		// Unreachable for well-formed values; encode as null rather than
		// corrupting the stream.
		w.Byte(tagNull)
	}
}

// GetValue decodes one value.
func GetValue(r *Reader) (value.Value, error) {
	return getValueDepth(r, 0)
}

func getValueDepth(r *Reader, depth int) (value.Value, error) {
	if depth > MaxDepth {
		return value.Null, fmt.Errorf("%w: value nesting exceeds %d", ErrCodec, MaxDepth)
	}
	tag, err := r.Byte()
	if err != nil {
		return value.Null, err
	}
	switch tag {
	case tagNull:
		return value.Null, nil
	case tagFalse:
		return value.False, nil
	case tagTrue:
		return value.True, nil
	case tagInt:
		i, err := r.Varint()
		if err != nil {
			return value.Null, err
		}
		return value.NewInt(i), nil
	case tagFloat:
		f, err := r.Float()
		if err != nil {
			return value.Null, err
		}
		return value.NewFloat(f), nil
	case tagString:
		s, err := r.String()
		if err != nil {
			return value.Null, err
		}
		return value.NewString(s), nil
	case tagBytes:
		b, err := r.BytesField()
		if err != nil {
			return value.Null, err
		}
		return value.NewBytes(b), nil
	case tagList:
		n, err := r.Count()
		if err != nil {
			return value.Null, err
		}
		out := make([]value.Value, 0, min(n, 1024))
		for i := 0; i < n; i++ {
			e, err := getValueDepth(r, depth+1)
			if err != nil {
				return value.Null, err
			}
			out = append(out, e)
		}
		return value.NewList(out), nil
	case tagMap:
		n, err := r.Count()
		if err != nil {
			return value.Null, err
		}
		out := make(map[string]value.Value, min(n, 1024))
		for i := 0; i < n; i++ {
			k, err := r.String()
			if err != nil {
				return value.Null, err
			}
			e, err := getValueDepth(r, depth+1)
			if err != nil {
				return value.Null, err
			}
			out[k] = e
		}
		return value.NewMap(out), nil
	case tagRef:
		s, err := r.String()
		if err != nil {
			return value.Null, err
		}
		return value.NewRef(s), nil
	case tagTime:
		ns, err := r.Varint()
		if err != nil {
			return value.Null, err
		}
		return value.NewTime(time.Unix(0, ns).UTC()), nil
	default:
		return value.Null, fmt.Errorf("%w: unknown value tag %d", ErrCodec, tag)
	}
}

// EncodeValue is a convenience wrapper returning a fresh encoding of v.
func EncodeValue(v value.Value) []byte {
	var w Writer
	PutValue(&w, v)
	return w.Bytes()
}

// DecodeValue decodes a value and requires full consumption of the input.
func DecodeValue(b []byte) (value.Value, error) {
	r := NewReader(b)
	v, err := GetValue(r)
	if err != nil {
		return value.Null, err
	}
	if !r.Done() {
		return value.Null, fmt.Errorf("%w: %d trailing bytes after value", ErrCodec, r.Remaining())
	}
	return v, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
