package wire

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/naming"
	"repro/internal/security"
	"repro/internal/value"
)

var gen = naming.NewGenerator("wire-test")

func sampleImage() core.Image {
	origin := gen.New()
	return core.Image{
		ID:         gen.New(),
		Class:      "Ambassador",
		Domain:     "origin.site",
		MetaHidden: true,
		MetaACL: []core.ACLEntryImage{
			{Allow: true, Object: origin, Action: security.ActionAny},
			{Allow: false},
		},
		FixedData: []core.DataItemImage{
			{Name: "origin", Value: value.NewString(origin.String()), Visible: true},
		},
		ExtData: []core.DataItemImage{
			{Name: "cache", Value: value.NewMap(map[string]value.Value{"k": value.NewInt(1)}), Visible: true},
			{Name: "hits", Value: value.NewInt(3), DynKind: value.KindInt, Visible: false,
				ACL: []core.ACLEntryImage{{Allow: true, Domain: "host.*", Action: security.ActionGet}}},
		},
		FixedMethods: []core.MethodImage{
			{Name: "query", Body: core.BodyDescriptor{Kind: core.BodyScript, Source: "fn(k) { return k; }"}, Visible: true},
		},
		ExtMethods: []core.MethodImage{
			{Name: "refresh",
				Body:    core.BodyDescriptor{Kind: core.BodyScript, Source: "fn() { return 1; }"},
				Pre:     core.BodyDescriptor{Kind: core.BodyScript, Source: "fn() { return true; }"},
				Post:    core.BodyDescriptor{Kind: core.BodyNative, Name: "app.check"},
				Visible: true},
		},
		InvokeLevels: []core.MethodImage{
			{Name: "invoke@1", Body: core.BodyDescriptor{Kind: core.BodyScript,
				Source: "fn(n, a) { return self.invokeNext(n, a); }"}, Visible: true},
		},
	}
}

func imagesEqual(a, b core.Image) bool {
	if a.ID != b.ID || a.Class != b.Class || a.Domain != b.Domain || a.MetaHidden != b.MetaHidden {
		return false
	}
	if len(a.MetaACL) != len(b.MetaACL) || len(a.FixedData) != len(b.FixedData) ||
		len(a.ExtData) != len(b.ExtData) || len(a.FixedMethods) != len(b.FixedMethods) ||
		len(a.ExtMethods) != len(b.ExtMethods) || len(a.InvokeLevels) != len(b.InvokeLevels) {
		return false
	}
	for i := range a.MetaACL {
		if a.MetaACL[i] != b.MetaACL[i] {
			return false
		}
	}
	for i := range a.ExtData {
		x, y := a.ExtData[i], b.ExtData[i]
		if x.Name != y.Name || x.DynKind != y.DynKind || x.Visible != y.Visible || !x.Value.Equal(y.Value) {
			return false
		}
		if len(x.ACL) != len(y.ACL) {
			return false
		}
		for j := range x.ACL {
			if x.ACL[j] != y.ACL[j] {
				return false
			}
		}
	}
	for i := range a.ExtMethods {
		if a.ExtMethods[i].Body != b.ExtMethods[i].Body ||
			a.ExtMethods[i].Pre != b.ExtMethods[i].Pre ||
			a.ExtMethods[i].Post != b.ExtMethods[i].Post {
			return false
		}
	}
	return true
}

func TestImageRoundTrip(t *testing.T) {
	img := sampleImage()
	enc := EncodeImage(img)
	got, err := DecodeImage(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !imagesEqual(img, got) {
		t.Errorf("image round trip mismatch:\n got %+v\nwant %+v", got, img)
	}
}

func TestImageEndToEndThroughCore(t *testing.T) {
	// Build a live object, snapshot, encode, decode, materialize, invoke.
	pol := security.NewPolicy()
	pol.SetDefault(security.Untrusted, security.Allow)
	b := core.NewBuilder(gen, "Traveler", core.WithPolicy(pol))
	b.ExtData("n", value.NewInt(20), core.WithDynKind(value.KindInt))
	b.FixedScriptMethod("grow", `fn(by) { self.n = self.n + by; return self.n; }`)
	obj := b.MustBuild()
	if _, err := obj.InvokeSelf("grow", value.NewInt(1)); err != nil {
		t.Fatal(err)
	}

	img, err := obj.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	bytes := EncodeImage(img)
	img2, err := DecodeImage(bytes)
	if err != nil {
		t.Fatal(err)
	}
	re, err := core.FromImage(img2, nil, core.HostPolicy(pol))
	if err != nil {
		t.Fatal(err)
	}
	v, err := re.InvokeSelf("grow", value.NewInt(21))
	if err != nil {
		t.Fatal(err)
	}
	if i, _ := v.Int(); i != 42 {
		t.Errorf("grow after transit = %v", v)
	}
}

func TestDecodeImageRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0},
		{0xDE, 0xAD, 0xBE, 0xEF},
		EncodeValue(value.NewString("not an image")),
	}
	for _, c := range cases {
		if _, err := DecodeImage(c); !errors.Is(err, ErrCodec) {
			t.Errorf("DecodeImage(% x): %v", c, err)
		}
	}
	// Wrong version.
	img := sampleImage()
	enc := EncodeImage(img)
	enc[2] = 99 // version byte follows the 2-byte magic varint
	if _, err := DecodeImage(enc); !errors.Is(err, ErrCodec) {
		t.Errorf("bad version: %v", err)
	}
	// Truncations at every prefix must fail cleanly, never panic.
	for i := 0; i < len(enc)-1; i++ {
		if _, err := DecodeImage(enc[:i]); err == nil {
			t.Errorf("truncation at %d accepted", i)
		}
	}
	// Trailing bytes rejected.
	if _, err := DecodeImage(append(EncodeImage(img), 0)); !errors.Is(err, ErrCodec) {
		t.Errorf("trailing bytes: %v", err)
	}
}

func TestIDRoundTrip(t *testing.T) {
	id := gen.New()
	var w Writer
	PutID(&w, id)
	got, err := GetID(NewReader(w.Bytes()))
	if err != nil || got != id {
		t.Errorf("GetID = %v, %v", got, err)
	}
	if _, err := GetID(NewReader([]byte{1, 2})); !errors.Is(err, ErrCodec) {
		t.Errorf("short id: %v", err)
	}
}

// randomImage builds an arbitrary (structurally valid) image.
func randomImage(r *rand.Rand) core.Image {
	randACL := func() []core.ACLEntryImage {
		n := r.Intn(3)
		out := make([]core.ACLEntryImage, n)
		for i := range out {
			out[i] = core.ACLEntryImage{
				Allow:  r.Intn(2) == 0,
				Object: gen.New(),
				Domain: randWord(r),
				Action: security.Action(r.Intn(5)),
			}
		}
		return out
	}
	randData := func(n int) []core.DataItemImage {
		out := make([]core.DataItemImage, n)
		for i := range out {
			out[i] = core.DataItemImage{
				Name:    fmt.Sprintf("d%d", i),
				Value:   randomValue(r, 3),
				DynKind: value.Kind(r.Intn(10)),
				Visible: r.Intn(2) == 0,
				ACL:     randACL(),
			}
		}
		return out
	}
	randMethods := func(n int) []core.MethodImage {
		out := make([]core.MethodImage, n)
		for i := range out {
			m := core.MethodImage{
				Name:    fmt.Sprintf("m%d", i),
				Body:    core.BodyDescriptor{Kind: core.BodyScript, Source: "fn() { return " + fmt.Sprint(r.Intn(100)) + "; }"},
				Visible: r.Intn(2) == 0,
				ACL:     randACL(),
			}
			if r.Intn(2) == 0 {
				m.Pre = core.BodyDescriptor{Kind: core.BodyNative, Name: randWord(r)}
			}
			if r.Intn(2) == 0 {
				m.Post = core.BodyDescriptor{Kind: core.BodyScript, Source: "fn() { return true; }"}
			}
			out[i] = m
		}
		return out
	}
	return core.Image{
		ID:           gen.New(),
		Class:        randWord(r),
		Domain:       randWord(r),
		MetaHidden:   r.Intn(2) == 0,
		MetaACL:      randACL(),
		FixedData:    randData(r.Intn(4)),
		ExtData:      randData(r.Intn(4)),
		FixedMethods: randMethods(r.Intn(3)),
		ExtMethods:   randMethods(r.Intn(3)),
		InvokeLevels: randMethods(r.Intn(2)),
	}
}

func randWord(r *rand.Rand) string {
	const chars = "abcdefghij.*"
	n := 1 + r.Intn(8)
	b := make([]byte, n)
	for i := range b {
		b[i] = chars[r.Intn(len(chars))]
	}
	return string(b)
}

// Property: random images round-trip the codec exactly, and truncations
// never panic.
func TestPropImageRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		img := randomImage(r)
		enc := EncodeImage(img)
		got, err := DecodeImage(enc)
		if err != nil {
			t.Logf("seed %d: decode: %v", seed, err)
			return false
		}
		if !imagesEqual(img, got) {
			t.Logf("seed %d: mismatch", seed)
			return false
		}
		// Truncations fail cleanly.
		cut := enc[:r.Intn(len(enc))]
		if _, err := DecodeImage(cut); err == nil && len(cut) < len(enc) {
			t.Logf("seed %d: truncation at %d decoded", seed, len(cut))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
