package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/value"
)

func TestValueRoundTripTable(t *testing.T) {
	now := time.Date(2026, 7, 5, 1, 2, 3, 4000, time.UTC)
	vals := []value.Value{
		value.Null,
		value.True,
		value.False,
		value.NewInt(0),
		value.NewInt(-1 << 62),
		value.NewInt(1<<62 + 12345),
		value.NewFloat(3.25),
		value.NewFloat(-0.0),
		value.NewString(""),
		value.NewString("héllo\x00world"),
		value.NewBytes([]byte{0, 1, 2, 255}),
		value.NewBytes(nil),
		value.NewListOf(),
		value.NewListOf(value.NewInt(1), value.NewString("two"), value.NewListOf(value.True)),
		value.NewMap(map[string]value.Value{}),
		value.NewMap(map[string]value.Value{
			"a": value.NewInt(1),
			"b": value.NewMap(map[string]value.Value{"c": value.Null}),
		}),
		value.NewRef("00000000-000000000000-0000-00000000"),
		value.NewTime(now),
	}
	for _, v := range vals {
		enc := EncodeValue(v)
		got, err := DecodeValue(enc)
		if err != nil {
			t.Errorf("DecodeValue(%s %s): %v", v.Kind(), v, err)
			continue
		}
		if !got.Equal(v) {
			t.Errorf("round trip %s: got %s, want %s", v.Kind(), got, v)
		}
	}
}

func TestEncodingIsDeterministic(t *testing.T) {
	v := value.NewMap(map[string]value.Value{
		"z": value.NewInt(1), "a": value.NewInt(2), "m": value.NewInt(3),
	})
	e1 := EncodeValue(v)
	e2 := EncodeValue(v)
	if !bytes.Equal(e1, e2) {
		t.Error("same value encoded differently")
	}
}

// randomValue mirrors the generator in the value package tests.
func randomValue(r *rand.Rand, depth int) value.Value {
	k := r.Intn(10)
	if depth <= 0 && (k == 6 || k == 7) {
		k = r.Intn(6)
	}
	switch k {
	case 0:
		return value.Null
	case 1:
		return value.NewBool(r.Intn(2) == 0)
	case 2:
		return value.NewInt(r.Int63() - r.Int63())
	case 3:
		return value.NewFloat(r.NormFloat64() * 1e9)
	case 4:
		return value.NewString(randString(r))
	case 5:
		b := make([]byte, r.Intn(32))
		r.Read(b)
		return value.NewBytes(b)
	case 6:
		n := r.Intn(5)
		l := make([]value.Value, n)
		for i := range l {
			l[i] = randomValue(r, depth-1)
		}
		return value.NewList(l)
	case 7:
		n := r.Intn(5)
		m := make(map[string]value.Value, n)
		for i := 0; i < n; i++ {
			m[randString(r)] = randomValue(r, depth-1)
		}
		return value.NewMap(m)
	case 8:
		return value.NewRef(randString(r))
	default:
		return value.NewTime(time.Unix(r.Int63n(1e9), r.Int63n(1e9)).UTC())
	}
}

func randString(r *rand.Rand) string {
	n := r.Intn(12)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.Intn(256))
	}
	return string(b)
}

// Property: every value round-trips bit-exactly.
func TestPropValueRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 4)
		got, err := DecodeValue(EncodeValue(v))
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: decoders never panic on corrupt input and either fail cleanly
// or decode something (truncation/bit flips of valid encodings).
func TestPropDecodeRobustness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		enc := EncodeValue(randomValue(r, 4))
		// Random truncation.
		if len(enc) > 0 {
			cut := enc[:r.Intn(len(enc))]
			_, _ = DecodeValue(cut)
			// Random corruption.
			mut := make([]byte, len(enc))
			copy(mut, enc)
			mut[r.Intn(len(mut))] ^= byte(1 + r.Intn(255))
			_, _ = DecodeValue(mut)
		}
		return true // reaching here without panic is the property
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeValueErrors(t *testing.T) {
	cases := [][]byte{
		{},                  // empty
		{99},                // unknown tag
		{tagInt},            // truncated varint
		{tagString, 5, 'a'}, // short string
		{tagFloat, 1, 2},    // short float
		append([]byte{tagString}, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01), // oversized blob
	}
	for _, c := range cases {
		if _, err := DecodeValue(c); !errors.Is(err, ErrCodec) {
			t.Errorf("DecodeValue(% x): %v", c, err)
		}
	}
	// Trailing bytes rejected.
	enc := append(EncodeValue(value.NewInt(1)), 0)
	if _, err := DecodeValue(enc); !errors.Is(err, ErrCodec) {
		t.Errorf("trailing bytes: %v", err)
	}
	// Deep nesting rejected.
	var w Writer
	for i := 0; i < MaxDepth+2; i++ {
		w.Byte(tagList)
		w.Uvarint(1)
	}
	w.Byte(tagNull)
	if _, err := DecodeValue(w.Bytes()); !errors.Is(err, ErrCodec) {
		t.Errorf("deep nesting: %v", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: FrameRequest, RequestID: 1, Verb: "invoke", Payload: []byte("payload")},
		{Type: FrameResponse, RequestID: 1 << 60, Verb: "", Payload: nil},
		{Type: FrameError, RequestID: 7, Verb: "export", Payload: []byte{0}},
		{Type: FramePing, RequestID: 0, Verb: "", Payload: []byte{}},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || got.RequestID != want.RequestID || got.Verb != want.Verb {
			t.Errorf("frame = %+v, want %+v", got, want)
		}
		if !bytes.Equal(got.Payload, want.Payload) && len(got.Payload)+len(want.Payload) > 0 {
			t.Errorf("payload = % x, want % x", got.Payload, want.Payload)
		}
	}
}

func TestFrameErrors(t *testing.T) {
	// Oversized frame rejected on write.
	big := Frame{Type: FrameRequest, Payload: make([]byte, MaxFrame)}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, big); !errors.Is(err, ErrCodec) {
		t.Errorf("oversized write: %v", err)
	}
	// Oversized length prefix rejected on read.
	var hdr bytes.Buffer
	hdr.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&hdr); !errors.Is(err, ErrCodec) {
		t.Errorf("oversized read: %v", err)
	}
	// Truncated body.
	var tr bytes.Buffer
	tr.Write([]byte{0, 0, 0, 10, 1, 2})
	if _, err := ReadFrame(&tr); err == nil {
		t.Error("truncated body accepted")
	}
	// Trailing junk inside the frame body.
	var w Writer
	w.Byte(byte(FramePing))
	w.Uvarint(0)
	w.String("")
	w.BytesField(nil)
	w.Byte(0xEE)
	var framed bytes.Buffer
	framed.Write([]byte{0, 0, 0, byte(w.Len())})
	framed.Write(w.Bytes())
	if _, err := ReadFrame(&framed); !errors.Is(err, ErrCodec) {
		t.Errorf("trailing junk: %v", err)
	}
	if !strings.Contains(FrameRequest.String(), "request") || FrameType(99).String() == "" {
		t.Error("FrameType.String wrong")
	}
}

func TestReaderPrimitivesErrors(t *testing.T) {
	r := NewReader(nil)
	if _, err := r.Byte(); err == nil {
		t.Error("Byte on empty")
	}
	if _, err := r.Uvarint(); err == nil {
		t.Error("Uvarint on empty")
	}
	if _, err := r.Varint(); err == nil {
		t.Error("Varint on empty")
	}
	if _, err := r.Float(); err == nil {
		t.Error("Float on empty")
	}
	if _, err := NewReader([]byte{7}).Bool(); err == nil {
		t.Error("Bool with bad byte")
	}
	var w Writer
	w.Uvarint(MaxElems + 1)
	if _, err := NewReader(w.Bytes()).Count(); !errors.Is(err, ErrCodec) {
		t.Error("Count over limit")
	}
	// Writer reuse.
	w.Reset()
	if w.Len() != 0 {
		t.Error("Reset failed")
	}
}
