// Package wire implements the marshaling substrate: a self-describing
// tag-length-value binary encoding for model values, object images and
// transport frames. It plays the role Java serialization plays for HADAS
// (§5: "agreements over low-level protocols, marshaling schemes").
//
// The format is defensive: every decoder enforces depth and size limits so
// a malicious peer cannot make a host allocate unboundedly — mobile-object
// systems decode bytes from domains with "varying levels of trust".
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrCodec reports malformed or oversized wire data.
var ErrCodec = errors.New("wire codec error")

// Limits bound what a decoder will accept.
const (
	// MaxBlob is the largest single string/bytes payload.
	MaxBlob = 16 << 20
	// MaxElems is the largest list/map element count.
	MaxElems = 1 << 20
	// MaxDepth is the deepest value nesting.
	MaxDepth = 64
)

// Writer accumulates an encoded message. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// Bytes returns the accumulated encoding.
func (w *Writer) Bytes() []byte { return w.buf }

// Len reports the encoded size so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset clears the writer for reuse.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Byte appends a raw byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Varint appends a signed varint (zig-zag).
func (w *Writer) Varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

// Float appends a float64 (IEEE 754 bits, little endian).
func (w *Writer) Float(f float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(f))
}

// Bool appends a boolean byte.
func (w *Writer) Bool(b bool) {
	if b {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
}

// Bytes appends a length-prefixed byte string.
func (w *Writer) BytesField(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Raw appends bytes without a length prefix.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Reader consumes an encoded message.
type Reader struct {
	buf []byte
	off int
}

// NewReader wraps a byte slice for decoding. The slice is not copied.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Remaining reports undecoded bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Done reports whether the input is fully consumed.
func (r *Reader) Done() bool { return r.off >= len(r.buf) }

func (r *Reader) fail(what string) error {
	return fmt.Errorf("%w: truncated %s at offset %d", ErrCodec, what, r.off)
}

// Byte reads one byte.
func (r *Reader) Byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, r.fail("byte")
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, r.fail("uvarint")
	}
	r.off += n
	return v, nil
}

// Varint reads a signed varint.
func (r *Reader) Varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		return 0, r.fail("varint")
	}
	r.off += n
	return v, nil
}

// Float reads a float64.
func (r *Reader) Float() (float64, error) {
	if r.Remaining() < 8 {
		return 0, r.fail("float")
	}
	bits := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return math.Float64frombits(bits), nil
}

// Bool reads a boolean byte.
func (r *Reader) Bool() (bool, error) {
	b, err := r.Byte()
	if err != nil {
		return false, err
	}
	switch b {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("%w: bad bool byte %d", ErrCodec, b)
	}
}

// BytesField reads a length-prefixed byte string (copied).
func (r *Reader) BytesField() ([]byte, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > MaxBlob {
		return nil, fmt.Errorf("%w: blob of %d bytes exceeds limit", ErrCodec, n)
	}
	if uint64(r.Remaining()) < n {
		return nil, r.fail("bytes payload")
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:])
	r.off += int(n)
	return out, nil
}

// String reads a length-prefixed string.
func (r *Reader) String() (string, error) {
	b, err := r.BytesField()
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Count reads an element count, bounded by MaxElems.
func (r *Reader) Count() (int, error) {
	n, err := r.Uvarint()
	if err != nil {
		return 0, err
	}
	if n > MaxElems {
		return 0, fmt.Errorf("%w: %d elements exceeds limit", ErrCodec, n)
	}
	return int(n), nil
}
