package wire

// Golden vectors for the value codec. The testdata files were captured
// from the pre-compaction struct layout of value.Value (the 120-byte
// tagged union); the tests assert that the current representation —
// whatever its in-memory shape — produces byte-identical wire and JSON
// encodings and decodes the captured bytes back to equal values. Run with
// -update to re-capture (only legitimate when the *format* changes, never
// for a representation change).

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/value"
)

var updateGolden = flag.Bool("update", false, "rewrite golden testdata files")

// goldenEntry is one captured vector: the value is reconstructed from
// Wire, and JSON is the expected value.ToJSON rendering ("" when the value
// has no JSON representation, e.g. NaN).
type goldenEntry struct {
	Name string `json:"name"`
	Wire string `json:"wire"` // hex of the wire encoding
	JSON string `json:"json"`
}

// goldenCorpus enumerates values covering every kind, the encoding edge
// cases (zero, negative, NaN, ±Inf, empty and nested composites), plus a
// deterministic pseudo-random deep-nesting sweep.
func goldenCorpus() []struct {
	name string
	v    value.Value
} {
	long := ""
	for i := 0; i < 300; i++ {
		long += "x"
	}
	out := []struct {
		name string
		v    value.Value
	}{
		{"null", value.Null},
		{"true", value.True},
		{"false", value.False},
		{"int-zero", value.NewInt(0)},
		{"int-small", value.NewInt(42)},
		{"int-neg", value.NewInt(-1234567)},
		{"int-max", value.NewInt(math.MaxInt64)},
		{"int-min", value.NewInt(math.MinInt64)},
		{"float-zero", value.NewFloat(0)},
		{"float-pi", value.NewFloat(3.141592653589793)},
		{"float-neg", value.NewFloat(-2.5e-3)},
		{"float-nan", value.NewFloat(math.NaN())},
		{"float-inf", value.NewFloat(math.Inf(1))},
		{"float-ninf", value.NewFloat(math.Inf(-1))},
		{"string-empty", value.NewString("")},
		{"string-ascii", value.NewString("hello, world")},
		{"string-utf8", value.NewString("héllo ✓ 世界")},
		{"string-long", value.NewString(long)},
		{"bytes-empty", value.NewBytes([]byte{})},
		{"bytes-short", value.NewBytes([]byte{0, 1, 2, 0xfe, 0xff})},
		{"list-empty", value.NewList(nil)},
		{"list-flat", value.NewListOf(value.NewInt(1), value.NewString("two"), value.NewFloat(3))},
		{"list-nested", value.NewListOf(
			value.NewListOf(value.NewInt(1), value.NewInt(2)),
			value.NewListOf(value.NewListOf(value.True)),
		)},
		{"map-empty", value.NewMap(nil)},
		{"map-flat", value.NewMap(map[string]value.Value{
			"a": value.NewInt(1), "b": value.NewString("s"), "z": value.Null,
		})},
		{"map-nested", value.NewMap(map[string]value.Value{
			"inner": value.NewMap(map[string]value.Value{"k": value.NewListOf(value.NewInt(7))}),
			"list":  value.NewListOf(value.NewMap(map[string]value.Value{"x": value.True})),
		})},
		{"ref", value.NewRef("payroll@origin")},
		{"ref-empty", value.NewRef("")},
		{"time-epoch", value.NewTime(time.Unix(0, 0).UTC())},
		{"time-ns", value.NewTime(time.Unix(1234567890, 987654321).UTC())},
		{"time-neg", value.NewTime(time.Unix(-1000, 500).UTC())},
	}
	rng := rand.New(rand.NewSource(0x5eed))
	for i := 0; i < 24; i++ {
		out = append(out, struct {
			name string
			v    value.Value
		}{fmt.Sprintf("rand-%02d", i), randValue(rng, 0)})
	}
	return out
}

// randValue builds a deterministic pseudo-random value, bounded at four
// levels of nesting.
func randValue(rng *rand.Rand, depth int) value.Value {
	max := 10
	if depth >= 4 {
		max = 7 // leaves only
	}
	switch rng.Intn(max) {
	case 0:
		return value.Null
	case 1:
		return value.NewBool(rng.Intn(2) == 0)
	case 2:
		return value.NewInt(rng.Int63() - rng.Int63())
	case 3:
		return value.NewFloat(rng.NormFloat64() * 1e6)
	case 4:
		b := make([]byte, rng.Intn(12))
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		return value.NewString(fmt.Sprintf("s%x", b))
	case 5:
		b := make([]byte, rng.Intn(12))
		rng.Read(b)
		return value.NewBytes(b)
	case 6:
		return value.NewTime(time.Unix(rng.Int63n(1e9), rng.Int63n(1e9)).UTC())
	case 7:
		n := rng.Intn(5)
		elems := make([]value.Value, n)
		for i := range elems {
			elems[i] = randValue(rng, depth+1)
		}
		return value.NewList(elems)
	case 8:
		n := rng.Intn(5)
		m := make(map[string]value.Value, n)
		for i := 0; i < n; i++ {
			m[fmt.Sprintf("k%d", rng.Intn(100))] = randValue(rng, depth+1)
		}
		return value.NewMap(m)
	default:
		return value.NewRef(fmt.Sprintf("obj-%d@site", rng.Intn(1000)))
	}
}

func goldenPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join("testdata", name)
}

func writeGolden(t *testing.T, name string, v any) {
	t.Helper()
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath(t, name), append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

func readGolden(t *testing.T, name string, v any) {
	t.Helper()
	raw, err := os.ReadFile(goldenPath(t, name))
	if err != nil {
		t.Fatalf("missing golden file (run with -update to capture): %v", err)
	}
	if err := json.Unmarshal(raw, v); err != nil {
		t.Fatal(err)
	}
}

// TestValueGoldenVectors locks the wire and JSON encodings of the corpus
// to the bytes captured from the original struct layout, and checks that
// decoding those bytes yields values equal to freshly-constructed ones —
// the representation-equivalence contract of the compact Value.
func TestValueGoldenVectors(t *testing.T) {
	corpus := goldenCorpus()
	if *updateGolden {
		var entries []goldenEntry
		for _, c := range corpus {
			e := goldenEntry{Name: c.name, Wire: hex.EncodeToString(EncodeValue(c.v))}
			if j, err := value.ToJSON(c.v); err == nil {
				e.JSON = string(j)
			}
			entries = append(entries, e)
		}
		writeGolden(t, "value_golden.json", entries)
		t.Logf("captured %d vectors", len(entries))
		return
	}
	var entries []goldenEntry
	readGolden(t, "value_golden.json", &entries)
	if len(entries) != len(corpus) {
		t.Fatalf("golden has %d entries, corpus has %d", len(entries), len(corpus))
	}
	for i, c := range corpus {
		g := entries[i]
		if g.Name != c.name {
			t.Fatalf("entry %d: golden %q vs corpus %q", i, g.Name, c.name)
		}
		t.Run(c.name, func(t *testing.T) {
			enc := EncodeValue(c.v)
			if got := hex.EncodeToString(enc); got != g.Wire {
				t.Errorf("wire encoding drifted:\n got %s\nwant %s", got, g.Wire)
			}
			want, err := hex.DecodeString(g.Wire)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := DecodeValue(want)
			if err != nil {
				t.Fatalf("decode golden bytes: %v", err)
			}
			if !dec.Equal(c.v) {
				t.Errorf("decoded golden bytes != constructed value:\n got %v\nwant %v", dec, c.v)
			}
			// Decode→re-encode must be byte-stable too.
			if got := hex.EncodeToString(EncodeValue(dec)); got != g.Wire {
				t.Errorf("re-encode of decoded value drifted:\n got %s\nwant %s", got, g.Wire)
			}
			j, err := value.ToJSON(c.v)
			if err != nil {
				if g.JSON != "" {
					t.Errorf("ToJSON failed (%v) but golden has %q", err, g.JSON)
				}
				return
			}
			if string(j) != g.JSON {
				t.Errorf("JSON drifted:\n got %s\nwant %s", j, g.JSON)
			}
		})
	}
}

// TestValueRoundTripProperty is the property-style sweep: a larger seeded
// random population (not stored as golden) must round-trip the wire codec
// to Equal values with stable re-encodings, and JSON-native values must
// survive ToJSON→FromJSON.
func TestValueRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for i := 0; i < 500; i++ {
		v := randValue(rng, 0)
		enc := EncodeValue(v)
		dec, err := DecodeValue(enc)
		if err != nil {
			t.Fatalf("#%d %v: decode: %v", i, v, err)
		}
		if !dec.Equal(v) {
			t.Fatalf("#%d: round trip lost equality:\n in %v\nout %v", i, v, dec)
		}
		if got, want := EncodeValue(dec), enc; string(got) != string(want) {
			t.Fatalf("#%d: re-encode not byte-stable", i)
		}
		if jsonNative(v) {
			j, err := value.ToJSON(v)
			if err != nil {
				t.Fatalf("#%d %v: ToJSON: %v", i, v, err)
			}
			back, err := value.FromJSON(j)
			if err != nil {
				t.Fatalf("#%d: FromJSON: %v", i, err)
			}
			if !value.LooseEqual(back, v) && !back.Equal(v) {
				t.Fatalf("#%d: JSON round trip drifted:\n in %v\nout %v", i, v, back)
			}
		}
	}
}

// jsonNative reports whether v uses only kinds that survive a
// ToJSON→FromJSON round trip unchanged (bytes/ref/time re-enter as maps
// and strings by design, and non-finite floats have no JSON form).
func jsonNative(v value.Value) bool {
	switch v.Kind() {
	case value.KindNull, value.KindBool, value.KindInt, value.KindString:
		return true
	case value.KindFloat:
		f, _ := v.Float()
		return !math.IsNaN(f) && !math.IsInf(f, 0)
	case value.KindList:
		l, _ := v.List()
		for _, e := range l {
			if !jsonNative(e) {
				return false
			}
		}
		return true
	case value.KindMap:
		m, _ := v.Map()
		for _, e := range m {
			if !jsonNative(e) {
				return false
			}
		}
		return true
	default:
		return false
	}
}
