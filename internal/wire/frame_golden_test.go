package wire

import (
	"bytes"
	"encoding/hex"
	"testing"
)

// The frame layout is a wire contract between sites: header (u32 length),
// type byte, request id (uvarint), verb (string), chain (string, empty
// when the caller runs on no serialized call chain), payload (bytes).
// These vectors pin the exact bytes so an accidental reorder or width
// change fails loudly instead of silently breaking cross-version sites.
var frameGolden = []struct {
	name  string
	frame Frame
	hex   string
}{
	{
		name: "request with chain",
		frame: Frame{
			Type:      FrameRequest,
			RequestID: 7,
			Verb:      "hadas.invoke",
			Chain:     "siteA:42",
			Payload:   []byte{0x01, 0x02},
		},
		hex: "0000001b" + "01" + "07" +
			"0c" + "68616461732e696e766f6b65" + // "hadas.invoke"
			"08" + "73697465413a3432" + // "siteA:42"
			"02" + "0102",
	},
	{
		name: "response without chain",
		frame: Frame{
			Type:      FrameResponse,
			RequestID: 1,
			Verb:      "v",
			Payload:   nil,
		},
		hex: "00000006" + "02" + "01" + "01" + "76" + "00" + "00",
	},
	{
		name: "probe verb request",
		frame: Frame{
			Type:      FrameRequest,
			RequestID: 300,
			Verb:      "hadas.deadlock.probe",
			Chain:     "",
			Payload:   []byte("p"),
		},
		hex: "0000001b" + "01" + "ac02" +
			"14" + "68616461732e646561646c6f636b2e70726f6265" + // verb
			"00" + "01" + "70",
	},
	// ---- streaming extension (protocol v2) ----
	{
		name: "stream chunk",
		frame: Frame{
			Type:      FrameChunk,
			RequestID: 9,
			Payload:   []byte{0xde, 0xad, 0xbe, 0xef},
		},
		hex: "00000009" + "06" + "09" + "00" + "00" + "04" + "deadbeef",
	},
	{
		name: "stream end closing a request stream",
		frame: Frame{
			Type:      FrameStreamEnd,
			RequestID: 9,
			Verb:      "hadas.dispatch",
			Chain:     "siteA:1",
		},
		hex: "0000001a" + "07" + "09" +
			"0e" + "68616461732e6469737061746368" + // "hadas.dispatch"
			"07" + "73697465413a31" + // "siteA:1"
			"00",
	},
	{
		name: "credit grant",
		frame: Frame{
			Type:      FrameCredit,
			RequestID: 9,
			Payload:   []byte{0x80, 0x80, 0x04}, // uvarint(65536)
		},
		hex: "00000008" + "08" + "09" + "00" + "00" + "03" + "808004",
	},
	{
		name: "cancel",
		frame: Frame{
			Type:      FrameCancel,
			RequestID: 9,
		},
		hex: "00000005" + "09" + "09" + "00" + "00" + "00",
	},
}

func TestFrameGoldenVectors(t *testing.T) {
	for _, g := range frameGolden {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, g.frame); err != nil {
			t.Fatalf("%s: write: %v", g.name, err)
		}
		if got := hex.EncodeToString(buf.Bytes()); got != g.hex {
			t.Errorf("%s: encoding drifted\n got  %s\n want %s", g.name, got, g.hex)
		}
		raw, err := hex.DecodeString(g.hex)
		if err != nil {
			t.Fatalf("%s: bad vector: %v", g.name, err)
		}
		f, err := ReadFrame(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: read: %v", g.name, err)
		}
		if f.Type != g.frame.Type || f.RequestID != g.frame.RequestID ||
			f.Verb != g.frame.Verb || f.Chain != g.frame.Chain ||
			!bytes.Equal(f.Payload, g.frame.Payload) {
			t.Errorf("%s: round trip = %+v, want %+v", g.name, f, g.frame)
		}
	}
}
