package wire

import (
	"testing"

	"repro/internal/value"
)

func benchValue() value.Value {
	return value.NewMap(map[string]value.Value{
		"id":    value.NewString("00000000-000000000000-0000-00000000"),
		"count": value.NewInt(42),
		"tags":  value.NewListOf(value.NewString("a"), value.NewString("b")),
		"blob":  value.NewBytes(make([]byte, 256)),
	})
}

func BenchmarkEncodeValue(b *testing.B) {
	v := benchValue()
	enc := EncodeValue(v)
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = EncodeValue(v)
	}
}

func BenchmarkDecodeValue(b *testing.B) {
	enc := EncodeValue(benchValue())
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeValue(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeImage(b *testing.B) {
	img := sampleImage()
	enc := EncodeImage(img)
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = EncodeImage(img)
	}
}

func BenchmarkDecodeImage(b *testing.B) {
	enc := EncodeImage(sampleImage())
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeImage(enc); err != nil {
			b.Fatal(err)
		}
	}
}
