package wire

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/naming"
	"repro/internal/security"
	"repro/internal/value"
)

// imageMagic and imageVersion head every object image so a receiver can
// reject foreign or incompatible bytes before parsing further.
const (
	imageMagic   = 0x4D52 // "MR"
	imageVersion = 1
)

// PutID appends a naming.ID.
func PutID(w *Writer, id naming.ID) { w.Raw(id[:]) }

// GetID reads a naming.ID.
func GetID(r *Reader) (naming.ID, error) {
	var id naming.ID
	if r.Remaining() < len(id) {
		return naming.Nil, fmt.Errorf("%w: truncated object id", ErrCodec)
	}
	for i := range id {
		b, _ := r.Byte()
		id[i] = b
	}
	return id, nil
}

func putACL(w *Writer, entries []core.ACLEntryImage) {
	w.Uvarint(uint64(len(entries)))
	for _, e := range entries {
		w.Bool(e.Allow)
		PutID(w, e.Object)
		w.String(e.Domain)
		w.Byte(byte(e.Action))
	}
}

func getACL(r *Reader) ([]core.ACLEntryImage, error) {
	n, err := r.Count()
	if err != nil {
		return nil, err
	}
	out := make([]core.ACLEntryImage, 0, min(n, 1024))
	for i := 0; i < n; i++ {
		var e core.ACLEntryImage
		if e.Allow, err = r.Bool(); err != nil {
			return nil, err
		}
		if e.Object, err = GetID(r); err != nil {
			return nil, err
		}
		if e.Domain, err = r.String(); err != nil {
			return nil, err
		}
		b, err := r.Byte()
		if err != nil {
			return nil, err
		}
		e.Action = security.Action(b)
		out = append(out, e)
	}
	return out, nil
}

func putBodyDescriptor(w *Writer, d core.BodyDescriptor) {
	w.Byte(byte(d.Kind))
	switch d.Kind {
	case core.BodyNative:
		w.String(d.Name)
	case core.BodyScript:
		w.String(d.Source)
	}
}

func getBodyDescriptor(r *Reader) (core.BodyDescriptor, error) {
	b, err := r.Byte()
	if err != nil {
		return core.BodyDescriptor{}, err
	}
	d := core.BodyDescriptor{Kind: core.BodyKind(b)}
	switch d.Kind {
	case 0: // absent (pre/post slots)
		return d, nil
	case core.BodyNative:
		d.Name, err = r.String()
	case core.BodyScript:
		d.Source, err = r.String()
	default:
		return d, fmt.Errorf("%w: unknown body kind %d", ErrCodec, b)
	}
	return d, err
}

func putDataItems(w *Writer, items []core.DataItemImage) {
	w.Uvarint(uint64(len(items)))
	for _, d := range items {
		w.String(d.Name)
		PutValue(w, d.Value)
		w.Byte(byte(d.DynKind))
		w.Bool(d.Visible)
		putACL(w, d.ACL)
	}
}

func getDataItems(r *Reader) ([]core.DataItemImage, error) {
	n, err := r.Count()
	if err != nil {
		return nil, err
	}
	out := make([]core.DataItemImage, 0, min(n, 1024))
	for i := 0; i < n; i++ {
		var d core.DataItemImage
		if d.Name, err = r.String(); err != nil {
			return nil, err
		}
		if d.Value, err = GetValue(r); err != nil {
			return nil, err
		}
		kindByte, err := r.Byte()
		if err != nil {
			return nil, err
		}
		d.DynKind = value.Kind(kindByte)
		if d.Visible, err = r.Bool(); err != nil {
			return nil, err
		}
		if d.ACL, err = getACL(r); err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

func putMethods(w *Writer, items []core.MethodImage) {
	w.Uvarint(uint64(len(items)))
	for _, m := range items {
		w.String(m.Name)
		putBodyDescriptor(w, m.Body)
		putBodyDescriptor(w, m.Pre)
		putBodyDescriptor(w, m.Post)
		w.Bool(m.Visible)
		putACL(w, m.ACL)
	}
}

func getMethods(r *Reader) ([]core.MethodImage, error) {
	n, err := r.Count()
	if err != nil {
		return nil, err
	}
	out := make([]core.MethodImage, 0, min(n, 1024))
	for i := 0; i < n; i++ {
		var m core.MethodImage
		if m.Name, err = r.String(); err != nil {
			return nil, err
		}
		if m.Body, err = getBodyDescriptor(r); err != nil {
			return nil, err
		}
		if m.Pre, err = getBodyDescriptor(r); err != nil {
			return nil, err
		}
		if m.Post, err = getBodyDescriptor(r); err != nil {
			return nil, err
		}
		if m.Visible, err = r.Bool(); err != nil {
			return nil, err
		}
		if m.ACL, err = getACL(r); err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// EncodeImage serializes an object image — the byte form in which mobile
// objects travel and persist.
func EncodeImage(img core.Image) []byte {
	var w Writer
	w.Uvarint(imageMagic)
	w.Byte(imageVersion)
	PutID(&w, img.ID)
	w.String(img.Class)
	w.String(img.Domain)
	w.Bool(img.MetaHidden)
	putACL(&w, img.MetaACL)
	putDataItems(&w, img.FixedData)
	putDataItems(&w, img.ExtData)
	putMethods(&w, img.FixedMethods)
	putMethods(&w, img.ExtMethods)
	putMethods(&w, img.InvokeLevels)
	return w.Bytes()
}

// DecodeImage parses an object image, rejecting foreign or truncated input.
func DecodeImage(b []byte) (core.Image, error) {
	r := NewReader(b)
	magic, err := r.Uvarint()
	if err != nil {
		return core.Image{}, err
	}
	if magic != imageMagic {
		return core.Image{}, fmt.Errorf("%w: not an object image (magic %#x)", ErrCodec, magic)
	}
	ver, err := r.Byte()
	if err != nil {
		return core.Image{}, err
	}
	if ver != imageVersion {
		return core.Image{}, fmt.Errorf("%w: unsupported image version %d", ErrCodec, ver)
	}
	var img core.Image
	if img.ID, err = GetID(r); err != nil {
		return core.Image{}, err
	}
	if img.Class, err = r.String(); err != nil {
		return core.Image{}, err
	}
	if img.Domain, err = r.String(); err != nil {
		return core.Image{}, err
	}
	if img.MetaHidden, err = r.Bool(); err != nil {
		return core.Image{}, err
	}
	if img.MetaACL, err = getACL(r); err != nil {
		return core.Image{}, err
	}
	if img.FixedData, err = getDataItems(r); err != nil {
		return core.Image{}, err
	}
	if img.ExtData, err = getDataItems(r); err != nil {
		return core.Image{}, err
	}
	if img.FixedMethods, err = getMethods(r); err != nil {
		return core.Image{}, err
	}
	if img.ExtMethods, err = getMethods(r); err != nil {
		return core.Image{}, err
	}
	if img.InvokeLevels, err = getMethods(r); err != nil {
		return core.Image{}, err
	}
	if !r.Done() {
		return core.Image{}, fmt.Errorf("%w: %d trailing bytes after image", ErrCodec, r.Remaining())
	}
	return img, nil
}
