package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// FrameType discriminates transport messages.
type FrameType uint8

// Frame types of the site-to-site protocol.
const (
	FrameRequest  FrameType = 1
	FrameResponse FrameType = 2
	FrameError    FrameType = 3
	FramePing     FrameType = 4
	FramePong     FrameType = 5
)

// String returns the frame type name.
func (t FrameType) String() string {
	switch t {
	case FrameRequest:
		return "request"
	case FrameResponse:
		return "response"
	case FrameError:
		return "error"
	case FramePing:
		return "ping"
	case FramePong:
		return "pong"
	default:
		return fmt.Sprintf("frame(%d)", uint8(t))
	}
}

// Frame is one transport message: a type, a correlation id, a verb naming
// the operation, the call chain on whose behalf the request runs (empty
// when the caller holds no serialized admissions — then nothing upstream
// can deadlock on it), and an opaque payload.
type Frame struct {
	Type      FrameType
	RequestID uint64
	Verb      string
	Chain     string
	Payload   []byte
}

// MaxFrame bounds a whole frame on the wire.
const MaxFrame = MaxBlob + 4096

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, f Frame) error {
	var body Writer
	body.Byte(byte(f.Type))
	body.Uvarint(f.RequestID)
	body.String(f.Verb)
	body.String(f.Chain)
	body.BytesField(f.Payload)

	var hdr [4]byte
	if body.Len() > MaxFrame {
		return fmt.Errorf("%w: frame of %d bytes exceeds limit", ErrCodec, body.Len())
	}
	binary.BigEndian.PutUint32(hdr[:], uint32(body.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("write frame header: %w", err)
	}
	if _, err := w.Write(body.Bytes()); err != nil {
		return fmt.Errorf("write frame body: %w", err)
	}
	if bw, ok := w.(*bufio.Writer); ok {
		return bw.Flush()
	}
	return nil
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return Frame{}, fmt.Errorf("%w: frame of %d bytes exceeds limit", ErrCodec, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Frame{}, fmt.Errorf("read frame body: %w", err)
	}
	rd := NewReader(body)
	tb, err := rd.Byte()
	if err != nil {
		return Frame{}, err
	}
	f := Frame{Type: FrameType(tb)}
	if f.RequestID, err = rd.Uvarint(); err != nil {
		return Frame{}, err
	}
	if f.Verb, err = rd.String(); err != nil {
		return Frame{}, err
	}
	if f.Chain, err = rd.String(); err != nil {
		return Frame{}, err
	}
	if f.Payload, err = rd.BytesField(); err != nil {
		return Frame{}, err
	}
	if !rd.Done() {
		return Frame{}, fmt.Errorf("%w: %d trailing bytes in frame", ErrCodec, rd.Remaining())
	}
	return f, nil
}
