package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// FrameType discriminates transport messages.
type FrameType uint8

// Frame types of the site-to-site protocol. Types 6-9 form the streaming
// extension (protocol v2): large payloads travel as FrameChunk runs closed
// by a FrameStreamEnd (which carries the verb for request streams), the
// receiver grants window space back with FrameCredit, and FrameCancel
// tears down a stream (or an in-flight request) early. Unknown types are
// ignored by older receivers, so the schema can keep growing.
const (
	FrameRequest  FrameType = 1
	FrameResponse FrameType = 2
	FrameError    FrameType = 3
	FramePing     FrameType = 4
	FramePong     FrameType = 5
	// FrameChunk carries one bounded slice of a streamed payload.
	FrameChunk FrameType = 6
	// FrameStreamEnd closes a chunk run: the assembled payload is complete.
	// On a request stream it carries the Verb and Chain of the call the
	// chunks spell out; on a response stream both are informational.
	FrameStreamEnd FrameType = 7
	// FrameCredit grants the stream sender window space: the payload is a
	// uvarint of bytes the receiver has consumed (credit-based flow
	// control — a slow receiver stalls its own stream, not the connection).
	FrameCredit FrameType = 8
	// FrameCancel aborts the request id it names: a partially-assembled
	// request stream is discarded, an in-flight handler's context is
	// cancelled, and a response stream stops sending.
	FrameCancel FrameType = 9
)

// String returns the frame type name.
func (t FrameType) String() string {
	switch t {
	case FrameRequest:
		return "request"
	case FrameResponse:
		return "response"
	case FrameError:
		return "error"
	case FramePing:
		return "ping"
	case FramePong:
		return "pong"
	case FrameChunk:
		return "chunk"
	case FrameStreamEnd:
		return "stream-end"
	case FrameCredit:
		return "credit"
	case FrameCancel:
		return "cancel"
	default:
		return fmt.Sprintf("frame(%d)", uint8(t))
	}
}

// Frame is one transport message: a type, a correlation id, a verb naming
// the operation, the call chain on whose behalf the request runs (empty
// when the caller holds no serialized admissions — then nothing upstream
// can deadlock on it), and an opaque payload.
type Frame struct {
	Type      FrameType
	RequestID uint64
	Verb      string
	Chain     string
	Payload   []byte
}

// MaxFrame bounds a whole frame on the wire.
const MaxFrame = MaxBlob + 4096

// AppendFrame appends one length-prefixed frame to buf and returns the
// extended slice — the allocation-free encoder the coalescing transport
// writers batch frames with before a single syscall.
func AppendFrame(buf []byte, f Frame) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length header, patched below
	buf = append(buf, byte(f.Type))
	buf = binary.AppendUvarint(buf, f.RequestID)
	buf = binary.AppendUvarint(buf, uint64(len(f.Verb)))
	buf = append(buf, f.Verb...)
	buf = binary.AppendUvarint(buf, uint64(len(f.Chain)))
	buf = append(buf, f.Chain...)
	buf = binary.AppendUvarint(buf, uint64(len(f.Payload)))
	buf = append(buf, f.Payload...)
	n := len(buf) - start - 4
	if n > MaxFrame {
		return buf[:start], fmt.Errorf("%w: frame of %d bytes exceeds limit", ErrCodec, n)
	}
	binary.BigEndian.PutUint32(buf[start:], uint32(n))
	return buf, nil
}

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, f Frame) error {
	buf, err := AppendFrame(nil, f)
	if err != nil {
		return err
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("write frame: %w", err)
	}
	if bw, ok := w.(*bufio.Writer); ok {
		return bw.Flush()
	}
	return nil
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return Frame{}, fmt.Errorf("%w: frame of %d bytes exceeds limit", ErrCodec, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Frame{}, fmt.Errorf("read frame body: %w", err)
	}
	rd := NewReader(body)
	tb, err := rd.Byte()
	if err != nil {
		return Frame{}, err
	}
	f := Frame{Type: FrameType(tb)}
	if f.RequestID, err = rd.Uvarint(); err != nil {
		return Frame{}, err
	}
	if f.Verb, err = rd.String(); err != nil {
		return Frame{}, err
	}
	if f.Chain, err = rd.String(); err != nil {
		return Frame{}, err
	}
	if f.Payload, err = rd.BytesField(); err != nil {
		return Frame{}, err
	}
	if !rd.Done() {
		return Frame{}, fmt.Errorf("%w: %d trailing bytes in frame", ErrCodec, rd.Remaining())
	}
	return f, nil
}
