package wire

// Golden vector for the object-image codec and the core serialize path.
// Like the value vectors, the testdata bytes were captured before the
// compact-Value refactor; the test proves the current representation
// serializes objects byte-identically, including the full
// FromImage → Snapshot → EncodeImage round trip.

import (
	"encoding/hex"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/naming"
	"repro/internal/security"
	"repro/internal/value"
)

// goldenImage handcrafts a deterministic object image: a fixed parsed ID
// (generator-minted IDs embed wall time), script bodies only (native
// bodies need a registry and add nothing to codec coverage), items of
// every value kind, ACLs on items and meta, and two invoke levels.
func goldenImage(t *testing.T) core.Image {
	t.Helper()
	id, err := naming.ParseID("00000001-000000000002-0003-00000004")
	if err != nil {
		t.Fatal(err)
	}
	peer, err := naming.ParseID("0000000a-00000000000b-000c-0000000d")
	if err != nil {
		t.Fatal(err)
	}
	acl := []core.ACLEntryImage{
		{Allow: true, Object: peer, Action: security.ActionInvoke},
		{Allow: false, Domain: "wild", Action: security.ActionMeta},
		{Allow: true, Domain: "home"},
	}
	return core.Image{
		ID:         id,
		Class:      "GoldenAgent",
		Domain:     "home",
		MetaHidden: true,
		MetaACL:    acl[:1],
		FixedData: []core.DataItemImage{
			{Name: "balance", Value: value.NewInt(1234), DynKind: value.KindInt, Visible: true},
			{Name: "ratio", Value: value.NewFloat(0.625), Visible: true, ACL: acl},
			{Name: "tag", Value: value.NewString("héllo ✓"), Visible: false},
		},
		ExtData: []core.DataItemImage{
			{Name: "blob", Value: value.NewBytes([]byte{0, 1, 0xff}), Visible: true},
			{Name: "peers", Value: value.NewListOf(
				value.NewRef("a@x"), value.NewMap(map[string]value.Value{"n": value.Null}),
			), Visible: true},
			{Name: "seen", Value: value.NewTime(time.Unix(1_600_000_000, 42).UTC()), Visible: true},
		},
		FixedMethods: []core.MethodImage{
			{
				Name:    "work",
				Body:    core.BodyDescriptor{Kind: core.BodyScript, Source: "fn(x) { return x + 1; }"},
				Pre:     core.BodyDescriptor{Kind: core.BodyScript, Source: "fn(x) { return x; }"},
				Visible: true,
				ACL:     acl[2:],
			},
		},
		ExtMethods: []core.MethodImage{
			{
				Name:    "audit",
				Body:    core.BodyDescriptor{Kind: core.BodyScript, Source: "fn() { return self.getData(\"balance\"); }"},
				Post:    core.BodyDescriptor{Kind: core.BodyScript, Source: "fn(r) { return r; }"},
				Visible: false,
			},
		},
		InvokeLevels: []core.MethodImage{
			{
				Name:    "invoke",
				Body:    core.BodyDescriptor{Kind: core.BodyScript, Source: "fn(name, args) { return self.invokeNext(name, args); }"},
				Visible: true,
			},
			{
				Name:    "invoke",
				Body:    core.BodyDescriptor{Kind: core.BodyScript, Source: "fn(name, args) { return self.invokeNext(name, args); }"},
				Visible: true,
				ACL:     acl[:1],
			},
		},
	}
}

type imageGolden struct {
	Wire string `json:"wire"`
	// Snapshot of the materialized object re-encoded: script bodies are
	// re-rendered from the parsed AST, so these bytes are the normalized
	// form — stable, but not identical to the handcrafted sources above.
	SnapshotWire string `json:"snapshotWire"`
}

func snapshotWire(t *testing.T, enc []byte) string {
	t.Helper()
	dec, err := DecodeImage(enc)
	if err != nil {
		t.Fatalf("DecodeImage: %v", err)
	}
	obj, err := core.FromImage(dec, core.NewBehaviorRegistry())
	if err != nil {
		t.Fatalf("FromImage: %v", err)
	}
	snap, err := obj.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return hex.EncodeToString(EncodeImage(snap))
}

// TestImageGoldenVector locks EncodeImage output for the handcrafted
// image, checks DecodeImage rebuilds it to a byte-identical re-encoding,
// and drives the core serialize path: materialize the image into a live
// Object, Snapshot it, and require the snapshot to encode to the same
// golden bytes.
func TestImageGoldenVector(t *testing.T) {
	img := goldenImage(t)
	if *updateGolden {
		enc := EncodeImage(img)
		writeGolden(t, "image_golden.json", imageGolden{
			Wire:         hex.EncodeToString(enc),
			SnapshotWire: snapshotWire(t, enc),
		})
		return
	}
	var g imageGolden
	readGolden(t, "image_golden.json", &g)

	enc := EncodeImage(img)
	if got := hex.EncodeToString(enc); got != g.Wire {
		t.Errorf("EncodeImage drifted:\n got %s\nwant %s", got, g.Wire)
	}

	want, err := hex.DecodeString(g.Wire)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeImage(want)
	if err != nil {
		t.Fatalf("DecodeImage(golden): %v", err)
	}
	if got := hex.EncodeToString(EncodeImage(dec)); got != g.Wire {
		t.Errorf("decode→re-encode drifted:\n got %s", got)
	}

	// Core serialize path: image → live object → snapshot → stable bytes.
	if got := snapshotWire(t, want); got != g.SnapshotWire {
		t.Errorf("FromImage→Snapshot→EncodeImage drifted:\n got %s\nwant %s", got, g.SnapshotWire)
	}
}
